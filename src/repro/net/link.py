"""Links and transmitters.

The sending side of every port is a :class:`Transmitter`: it owns a queue
discipline and a :class:`Link`, dequeues whenever the line is idle, runs the
port's *egress pipeline hooks* (where egress-position AQs live, matching
Tofino's ingress → traffic manager → egress layout), serializes the packet
at line rate, and hands it to the link, which applies propagation delay and
delivers to the remote handler.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..errors import ConfigurationError
from ..obs.events import EV_DROP
from ..units import transmission_time
from .packet import Packet

#: An egress/ingress pipeline hook: ``hook(packet, now) -> bool``.
#: Returning ``False`` drops the packet (it has already left the queue).
PipelineHook = Callable[[Packet, float], bool]


class LinkStats:
    """Delivery counters for one simplex link."""

    __slots__ = (
        "delivered_packets",
        "delivered_bytes",
        "busy_time",
        "dropped_packets",
        "dropped_bytes",
        "corrupted_packets",
    )

    def __init__(self) -> None:
        self.delivered_packets = 0
        self.delivered_bytes = 0
        self.busy_time = 0.0
        self.dropped_packets = 0
        self.dropped_bytes = 0
        self.corrupted_packets = 0

    def utilization(self, duration: float) -> float:
        """Fraction of ``duration`` the line spent serializing packets."""
        if duration <= 0:
            return 0.0
        return min(1.0, self.busy_time / duration)


class Link:
    """A simplex wire: fixed rate, fixed propagation delay, one receiver."""

    __slots__ = (
        "sim",
        "rate_bps",
        "prop_delay",
        "_handler",
        "name",
        "stats",
        "_faulted",
        "_down",
        "_corrupt_prob",
        "_corrupt_rng",
    )

    def __init__(
        self,
        sim,
        rate_bps: float,
        prop_delay: float,
        handler: Callable[[Packet], None],
        name: str = "",
    ) -> None:
        if rate_bps <= 0:
            raise ConfigurationError(f"link rate must be positive, got {rate_bps}")
        if prop_delay < 0:
            raise ConfigurationError(f"propagation delay must be >= 0, got {prop_delay}")
        self.sim = sim
        self.rate_bps = rate_bps
        self.prop_delay = prop_delay
        self._handler = handler
        self.name = name
        self.stats = LinkStats()
        # Fault-injection state. ``_faulted`` is the single cached flag the
        # delivery hot path checks; it is True only while the link is down
        # or corrupting, so fault-free runs pay one branch per delivery.
        self._faulted = False
        self._down = False
        self._corrupt_prob = 0.0
        self._corrupt_rng = None
        tele = sim.telemetry
        if tele is not None and tele.enabled and name:
            tele.metrics.add_collector(self._collect_metrics)

    def _collect_metrics(self, registry) -> None:
        stats = self.stats
        registry.counter("link_delivered_packets", link=self.name).set(
            stats.delivered_packets
        )
        registry.counter("link_delivered_bytes", link=self.name).set(
            stats.delivered_bytes
        )
        registry.gauge("link_busy_time_s", link=self.name).set(stats.busy_time)
        registry.counter("link_dropped_packets", link=self.name).set(
            stats.dropped_packets
        )

    # -- fault injection -------------------------------------------------------

    @property
    def is_down(self) -> bool:
        return self._down

    def set_down(self) -> None:
        """Take the link down: every delivery attempt is dropped until
        :meth:`set_up`. Packets already handed to the remote handler's
        event are unaffected (they were on the far side of the wire)."""
        self._down = True
        self._faulted = True

    def set_up(self) -> None:
        """Bring the link back; corruption (if configured) stays active."""
        self._down = False
        self._faulted = self._corrupt_rng is not None

    def set_corruption(self, probability: float, rng) -> None:
        """Corrupt (drop) each delivered packet with ``probability``,
        drawing from ``rng`` — the fault plan's seeded generator, so runs
        are reproducible."""
        if not 0.0 <= probability <= 1.0:
            raise ConfigurationError(
                f"corruption probability must be in [0, 1], got {probability}"
            )
        self._corrupt_prob = probability
        self._corrupt_rng = rng if probability > 0.0 else None
        self._faulted = self._down or self._corrupt_rng is not None

    def clear_corruption(self) -> None:
        self._corrupt_prob = 0.0
        self._corrupt_rng = None
        self._faulted = self._down

    def _fault_drop(self, packet: Packet) -> bool:
        """Slow path behind the ``_faulted`` flag: decide and account the
        loss. Returns ``True`` when the packet must not be delivered."""
        if self._down:
            reason = "link_down"
        elif (
            self._corrupt_rng is not None
            and self._corrupt_rng.random() < self._corrupt_prob
        ):
            reason = "corrupt"
        else:
            return False
        now = self.sim.now
        stats = self.stats
        stats.dropped_packets += 1
        stats.dropped_bytes += packet.size
        if reason == "corrupt":
            stats.corrupted_packets += 1
        node = self.name or "link"
        tele = self.sim.telemetry
        if tele is not None and tele.enabled:
            tele.trace.emit_fields(
                EV_DROP, now, node=node, flow_id=packet.flow_id,
                size=packet.size, reason=reason,
            )
            fr = tele.flightrec
            if fr is not None and packet.flight is not None:
                fr.drop_hop(packet, node, now, reason)
                fr.complete(packet, now, "dropped", node=node)
        return True

    def deliver(self, packet: Packet) -> None:
        """Deliver a fully-serialized packet after propagation delay."""
        if self._faulted and self._fault_drop(packet):
            return
        self.stats.delivered_packets += 1
        self.stats.delivered_bytes += packet.size
        self.sim.schedule_fire(self.prop_delay, self._handler, packet)

    def deliver_now(self, packet: Packet) -> None:
        """Hand ``packet`` to the receiver immediately (the propagation
        delay has already been folded into the caller's event time — the
        transmitter's idle-line fast path)."""
        if self._faulted and self._fault_drop(packet):
            return
        self.stats.delivered_packets += 1
        self.stats.delivered_bytes += packet.size
        self._handler(packet)


#: Per-link simulation modes (the ``LinkMode`` abstraction). ``packet`` is
#: the default discrete-event regime; ``fluid`` parks the transmitter while
#: :class:`repro.sim.fluid.FluidEngine` advances the link analytically.
MODE_PACKET = "packet"
MODE_FLUID = "fluid"


def _boundary_trap(packet: Packet) -> None:  # pragma: no cover - never called
    raise ConfigurationError("BoundaryLink delivers via capture, not a handler")


class BoundaryLink(Link):
    """The egress half of a *cut link* in a sharded run.

    A sharded fabric (:mod:`repro.sim.shard`) splits the topology between
    partitions; links whose endpoints live in different partitions cannot
    deliver in-process. This proxy keeps the sending side's full packet
    regime — queue, transmitter, serialization, fault injection — and
    replaces delivery with a *capture*: the packet plus its computed
    arrival time at the far end is appended to the epoch's outbound
    boundary batch.

    The base link's ``prop_delay`` is forced to zero and the real wire
    delay kept as :attr:`wire_delay`, so the transmitter's idle-line
    combined event fires at *end of serialization* (not arrival). That is
    what makes conservative synchronization sound: a packet serialized
    during epoch ``(T-L, T]`` is captured inside that epoch, and with
    ``wire_delay >= L`` (the lookahead) its arrival ``now + wire_delay``
    lands strictly after the barrier ``T`` — the receiving partition can
    safely run to ``T`` before seeing it.

    Fault injection composes: a ``link_down``/``packet_corruption`` fault
    targeting the cut link drops at capture time in the *owning* shard,
    with the usual drop accounting, so blackouts on cut links behave
    identically at any shard count.
    """

    __slots__ = ("wire_delay", "link_id", "dest_partition", "capture", "exported")

    def __init__(
        self,
        sim,
        rate_bps: float,
        prop_delay: float,
        link_id: int,
        dest_partition: int,
        capture: Callable[["BoundaryLink", float, Packet], None],
        name: str = "",
    ) -> None:
        super().__init__(sim, rate_bps, 0.0, _boundary_trap, name=name)
        if prop_delay <= 0:
            raise ConfigurationError(
                f"cut link {name!r} needs positive propagation delay "
                f"(it bounds the shard lookahead), got {prop_delay}"
            )
        self.wire_delay = prop_delay
        self.link_id = link_id
        self.dest_partition = dest_partition
        self.capture = capture
        #: Per-link departure counter; with the capture time and link id it
        #: forms the partition-count-independent boundary ordering key.
        self.exported = 0

    def deliver(self, packet: Packet) -> None:
        """Capture a fully-serialized packet instead of delivering it."""
        if self._faulted and self._fault_drop(packet):
            return
        self.stats.delivered_packets += 1
        self.stats.delivered_bytes += packet.size
        self.capture(self, self.sim.now + self.wire_delay, packet)

    # The idle-line fast path schedules at ``tx_end + prop_delay`` with
    # ``prop_delay == 0``, so ``deliver_now`` also runs at serialization
    # end — identical capture semantics on both transmitter paths.
    deliver_now = deliver


class Transmitter:
    """Pulls packets from a queue and serializes them onto a link.

    Two scheduling regimes, chosen per packet at serialization start:

    * **Backlogged** — the queue holds more packets, so a ``_finish``
      event fires at end-of-serialization to deliver this packet and
      dequeue the next one (the classic two-events-per-packet path).
    * **Idle line** — the queue is empty, so serialization completion and
      propagation are folded into a *single* combined delivery event at
      ``now + tx + prop``. If another packet is offered mid-serialization,
      a ``_resume`` event is lazily scheduled at the exact
      end-of-serialization instant, so back-to-back timing is preserved
      bit-for-bit while an uncontended link pays one event per packet
      instead of two.

    A transmitter also carries a *mode* (:data:`MODE_PACKET` /
    :data:`MODE_FLUID`). In fluid mode the pump is disabled: an in-flight
    packet still delivers (so the fluid engine's drain barrier converges)
    but nothing new is pulled off the queue — the queue contents become
    plain state that the fluid engine accounts for in closed form.
    """

    def __init__(
        self,
        sim,
        queue,
        link: Link,
        egress_hooks: Optional[List[PipelineHook]] = None,
        name: str = "",
    ) -> None:
        self.sim = sim
        self.queue = queue
        self.link = link
        self.egress_hooks: List[PipelineHook] = list(egress_hooks or [])
        self.name = name
        tele = sim.telemetry
        self._flight = (
            tele.flightrec if tele is not None and tele.enabled else None
        )
        self._busy = False
        #: Absolute sim time when the in-flight packet leaves the line.
        self._tx_end = 0.0
        #: True when an event (``_finish`` or ``_resume``) will run at
        #: ``_tx_end`` to pull the next packet off the queue.
        self._finish_pending = False
        #: :data:`MODE_PACKET` or :data:`MODE_FLUID`; see class docstring.
        self.mode = MODE_PACKET

    @property
    def busy(self) -> bool:
        return self._busy and (self._finish_pending or self.sim.now < self._tx_end)

    def add_egress_hook(self, hook: PipelineHook) -> None:
        self.egress_hooks.append(hook)

    def offer(self, packet: Packet) -> bool:
        """Enqueue ``packet`` and start transmitting if the line is idle.

        Returns ``False`` when the queue discipline dropped the packet.
        """
        accepted = self.queue.enqueue(packet, self.sim.now)
        if accepted:
            self._pump()
        return accepted

    def kick(self) -> None:
        """Restart transmission if idle (used after out-of-band enqueues)."""
        self._pump()

    def set_mode(self, mode: str) -> None:
        """Switch between :data:`MODE_PACKET` and :data:`MODE_FLUID`.

        Entering fluid mode disables the pump; any packet currently on the
        line still delivers via its pending event. Leaving fluid mode
        clears serialization state — the caller rebuilds the queue first,
        then calls :meth:`kick` to restart the drain.
        """
        if mode not in (MODE_PACKET, MODE_FLUID):
            raise ValueError(f"unknown transmitter mode: {mode!r}")
        if mode == self.mode:
            return
        self.mode = mode
        if mode == MODE_PACKET:
            self._busy = False
            self._finish_pending = False

    def _pump(self) -> None:
        """Ensure the queue will drain: start now if the line is idle, or
        arrange the lazily-deferred dequeue at end-of-serialization."""
        if self.mode == MODE_FLUID:
            return
        if self._line_busy():
            if not self._finish_pending:
                self._finish_pending = True
                self.sim.schedule_fire_at(self._tx_end, self._resume)
        else:
            self._start_next()

    def _line_busy(self) -> bool:
        if not self._busy:
            return False
        if self._finish_pending or self.sim.now < self._tx_end:
            return True
        # Fast-path serialization completed with nothing queued behind it.
        self._busy = False
        return False

    def _start_next(self) -> None:
        now = self.sim.now
        while True:
            packet = self.queue.dequeue(now)
            if packet is None:
                self._busy = False
                return
            if self._run_egress(packet, now):
                break
            # Hook dropped the packet after dequeue (egress policing); pull
            # the next one immediately.
        self._busy = True
        link = self.link
        tx_time = transmission_time(packet.size, link.rate_bps)
        link.stats.busy_time += tx_time
        self._tx_end = now + tx_time
        if self.queue.is_empty:
            # Idle-line fast path: one combined event delivers the packet;
            # a concurrent offer() will schedule the resume if needed.
            self._finish_pending = False
            self.sim.schedule_fire(tx_time + link.prop_delay, link.deliver_now, packet)
        else:
            self._finish_pending = True
            self.sim.schedule_fire(tx_time, self._finish, packet)

    def _run_egress(self, packet: Packet, now: float) -> bool:
        for hook in self.egress_hooks:
            if not hook(packet, now):
                # Egress discard (an egress-position AQ limit-drop): the
                # hook recorded why, the port name says where.
                fr = self._flight
                if fr is not None and packet.flight is not None:
                    fr.complete(packet, now, "dropped", node=self.name)
                return False
        return True

    def _finish(self, packet: Packet) -> None:
        self._finish_pending = False
        self.link.deliver(packet)
        if self.mode == MODE_FLUID:
            # Drain barrier: deliver the in-flight packet, then park.
            self._busy = False
            return
        self._start_next()

    def _resume(self) -> None:
        """Deferred end-of-serialization dequeue for the fast path."""
        self._finish_pending = False
        if self.mode == MODE_FLUID:
            self._busy = False
            return
        self._start_next()
