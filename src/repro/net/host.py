"""End hosts.

A :class:`Host` owns a NIC (egress queue + transmitter onto its access
link), an optional *shaper chain* in front of the NIC (where the PRL/DRL
baselines live — rate limiting at end hosts, exactly as the paper's
baselines do), and a demux table delivering received packets to transport
endpoints by flow ID.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Protocol

from ..errors import ConfigurationError, RoutingError
from ..obs.events import EV_DELIVER, EV_HOST_SEND
from ..queues.fifo import PhysicalFifoQueue
from .link import Link, Transmitter
from .packet import Packet

#: Generous host egress buffer; hosts are not the bottleneck under study.
DEFAULT_NIC_BUFFER_BYTES = 32 * 1024 * 1024


class FlowEndpoint(Protocol):
    """Anything that can consume packets addressed to a flow."""

    def on_packet(self, packet: Packet, now: float) -> None: ...


class Shaper(Protocol):
    """An egress shaper (token bucket, ElasticSwitch pair limiter, ...).

    ``submit`` either forwards the packet immediately, holds it for later
    release, or drops it; releases go to the ``forward`` callable given at
    construction/installation time.
    """

    def submit(self, packet: Packet) -> None: ...


class Host:
    """A server with one access link."""

    def __init__(self, sim, name: str, nic_buffer_bytes: int = DEFAULT_NIC_BUFFER_BYTES):
        self.sim = sim
        self.name = name
        self._endpoints: Dict[int, FlowEndpoint] = {}
        self._default_endpoint: Optional[FlowEndpoint] = None
        self._nic_queue = PhysicalFifoQueue(
            nic_buffer_bytes, name=f"{name}.nic", telemetry=sim.telemetry
        )
        tele = sim.telemetry
        self._tele = tele if tele is not None and tele.enabled else None
        self._flight = self._tele.flightrec if self._tele is not None else None
        #: Packets the NIC queue refused at enqueue (host egress drops).
        self.nic_dropped_packets = 0
        self._transmitter: Optional[Transmitter] = None
        self._shaper: Optional[Shaper] = None
        #: Called for every packet handed to the wire path (after shaping).
        self.on_transmit: Optional[Callable[[Packet], None]] = None
        #: Observers called for every packet delivered to this host.
        self.receive_taps: list = []

    # -- wiring -----------------------------------------------------------------

    def attach_link(self, link: Link) -> None:
        """Connect the NIC to the access link (done by the topology builder)."""
        if self._transmitter is not None:
            raise ConfigurationError(f"host {self.name} already has an access link")
        self._transmitter = Transmitter(
            self.sim, self._nic_queue, link, name=f"{self.name}.nic"
        )

    def install_shaper(self, shaper: Shaper) -> None:
        """Place a shaper in front of the NIC (PRL/DRL baselines)."""
        self._shaper = shaper

    def remove_shaper(self) -> None:
        self._shaper = None

    @property
    def nic_queue(self) -> PhysicalFifoQueue:
        return self._nic_queue

    @property
    def transmitter(self) -> Transmitter:
        if self._transmitter is None:
            raise ConfigurationError(f"host {self.name} has no access link")
        return self._transmitter

    # -- sending -------------------------------------------------------------------

    def send(self, packet: Packet) -> None:
        """Entry point for transports: shape (if any), then hit the NIC."""
        if self._shaper is not None:
            self._shaper.submit(packet)
        else:
            self.forward_to_nic(packet)

    def forward_to_nic(self, packet: Packet) -> None:
        """Bypass shaping and enqueue directly on the NIC (shaper release path).

        This is the injection point the conservation auditor counts:
        a ``host_send`` event fires here (post-shaper, so shaper discards
        never enter the in-flight ledger) and, with flight recording on,
        the packet is armed with its in-band hop-record header.
        """
        if self.on_transmit is not None:
            self.on_transmit(packet)
        tele = self._tele
        if tele is not None and tele.enabled:
            tele.trace.emit_fields(
                EV_HOST_SEND, self.sim.now, node=self.name,
                flow_id=packet.flow_id, size=packet.size,
            )
            fr = self._flight
            if fr is not None:
                fr.start(packet, self.sim.now)
        if not self.transmitter.offer(packet):
            self.nic_dropped_packets += 1

    # -- receiving --------------------------------------------------------------------

    def register_flow(self, flow_id: int, endpoint: FlowEndpoint) -> None:
        if flow_id in self._endpoints:
            raise ConfigurationError(
                f"flow {flow_id} already registered on host {self.name}"
            )
        self._endpoints[flow_id] = endpoint

    def unregister_flow(self, flow_id: int) -> None:
        self._endpoints.pop(flow_id, None)

    def set_default_endpoint(self, endpoint: FlowEndpoint) -> None:
        """Catch-all receiver for flows without a dedicated endpoint."""
        self._default_endpoint = endpoint

    def receive(self, packet: Packet) -> None:
        """Link-delivery handler: demux to the owning endpoint."""
        if packet.dst != self.name:
            raise RoutingError(
                f"packet for {packet.dst} delivered to host {self.name}"
            )
        now = self.sim.now
        tele = self._tele
        if tele is not None and tele.enabled:
            tele.trace.emit_fields(
                EV_DELIVER, now, node=self.name,
                flow_id=packet.flow_id, size=packet.size,
            )
        for tap in self.receive_taps:
            tap(packet, now)
        endpoint = self._endpoints.get(packet.flow_id, self._default_endpoint)
        if endpoint is not None:
            endpoint.on_packet(packet, self.sim.now)
        # Packets for unknown flows are silently dropped, like a real host
        # RST-ing a stale connection; tests assert on endpoint coverage.
        # The flight completes *after* endpoint dispatch so receivers can
        # still read the in-band header (to build the ACK digest echo).
        fr = self._flight
        if fr is not None and packet.flight is not None:
            fr.complete(packet, now, "delivered", node=self.name)
