"""Packet model.

A single mutable ``Packet`` class models data, ACK, and UDP datagrams. The
header carries everything the paper's data plane needs:

* the usual 5-tuple surrogate (``src``, ``dst``, ``flow_id``),
* transport fields (``seq``, ``ack``, ``fin``),
* ECN bits: ``ect`` (ECN-capable transport), ``ce`` (congestion
  experienced, set by queues/AQs), ``ece`` (echo, set by receivers on ACKs),
* the two AQ ID fields of Section 4.1 (``aq_ingress_id``/``aq_egress_id``;
  ``0`` is the default value meaning "no AQ at this position"),
* ``virtual_delay`` — the per-hop accumulated virtual queuing delay the AQ
  abstraction piggybacks for delay-based CCs (Section 3.3.2), and its echo
  on ACKs (``echo_virtual_delay``),
* ``flight`` — the INT-style in-band hop-record list appended by queues and
  AQs when flight recording is enabled (``None`` otherwise; see
  :mod:`repro.obs.flightrec`), and ``flight_digest`` — the compact summary
  a receiver echoes back on ACKs, mirroring ``echo_virtual_delay``.

Packets are mutated in place along the path (exactly like real headers) and
never shared between two in-flight copies: retransmissions construct fresh
packets.
"""

from __future__ import annotations

import itertools

#: Packet kinds. Plain ints (not Enum) — this is the hottest object in the
#: simulator and enum identity checks measurably slow the loop.
DATA = 0
ACK = 1
UDP = 2

_KIND_NAMES = {DATA: "DATA", ACK: "ACK", UDP: "UDP"}

#: Default AQ ID header value meaning "no AQ deployed at this position".
NO_AQ = 0

_packet_ids = itertools.count(1)


class Packet:
    """One simulated packet. See module docstring for field semantics."""

    __slots__ = (
        "packet_id",
        "kind",
        "src",
        "dst",
        "flow_id",
        "size",
        "seq",
        "ack",
        "fin",
        "ect",
        "ce",
        "ece",
        "aq_ingress_id",
        "aq_egress_id",
        "virtual_delay",
        "echo_virtual_delay",
        "sent_time",
        "enqueue_time",
        "retransmission",
        "flight",
        "flight_digest",
    )

    def __init__(
        self,
        kind: int,
        src: str,
        dst: str,
        flow_id: int,
        size: int,
        seq: int = 0,
        ack: int = 0,
        fin: bool = False,
        ect: bool = False,
        aq_ingress_id: int = NO_AQ,
        aq_egress_id: int = NO_AQ,
        retransmission: bool = False,
    ) -> None:
        self.packet_id = next(_packet_ids)
        self.kind = kind
        self.src = src
        self.dst = dst
        self.flow_id = flow_id
        self.size = size
        self.seq = seq
        self.ack = ack
        self.fin = fin
        self.ect = ect
        self.ce = False
        self.ece = False
        self.aq_ingress_id = aq_ingress_id
        self.aq_egress_id = aq_egress_id
        self.virtual_delay = 0.0
        self.echo_virtual_delay = 0.0
        self.sent_time = 0.0
        self.enqueue_time = 0.0
        self.retransmission = retransmission
        self.flight = None
        self.flight_digest = None

    @property
    def is_ack(self) -> bool:
        return self.kind == ACK

    @property
    def is_data(self) -> bool:
        return self.kind == DATA

    def mark_ce(self) -> None:
        """Set Congestion Experienced if the transport is ECN-capable."""
        if self.ect:
            self.ce = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = _KIND_NAMES.get(self.kind, str(self.kind))
        return (
            f"<Packet #{self.packet_id} {kind} {self.src}->{self.dst} "
            f"flow={self.flow_id} seq={self.seq} size={self.size}>"
        )


def make_data(
    src: str,
    dst: str,
    flow_id: int,
    seq: int,
    size: int,
    ect: bool = False,
    fin: bool = False,
    retransmission: bool = False,
) -> Packet:
    """Convenience constructor for a TCP data segment."""
    return Packet(
        DATA,
        src,
        dst,
        flow_id,
        size,
        seq=seq,
        fin=fin,
        ect=ect,
        retransmission=retransmission,
    )


def make_ack(
    src: str,
    dst: str,
    flow_id: int,
    ack: int,
    size: int,
    ece: bool = False,
    echo_virtual_delay: float = 0.0,
) -> Packet:
    """Convenience constructor for a pure acknowledgement."""
    packet = Packet(ACK, src, dst, flow_id, size, ack=ack)
    packet.ece = ece
    packet.echo_virtual_delay = echo_virtual_delay
    return packet


def make_udp(src: str, dst: str, flow_id: int, size: int) -> Packet:
    """Convenience constructor for a UDP datagram."""
    return Packet(UDP, src, dst, flow_id, size)
