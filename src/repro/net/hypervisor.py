"""Hypervisor-side AQ ID tagging (paper Section 4.1).

After the controller grants an AQ, *"the tenant needs to tag the AQ ID
into the header of packets. ... Either the VM hypervisor in each end host
or applications of tenants can perform this tagging operation."* So far
the harness plays the application role, stamping IDs at connection setup;
:class:`Hypervisor` plays the infrastructure role instead: it sits on a
host's transmit path and tags every outgoing packet from its policy
table — transports stay completely AQ-unaware.

Policies:

* a host-wide *ingress* AQ ID (the host's/VM's outbound entity), and
* a per-destination *egress* AQ ID map (the destination VM's inbound AQ,
  which the sender must stamp since the egress pipeline matches on it).

Already-tagged packets pass through untouched, so applications that
manage their own IDs coexist with hypervisor-managed ones.
"""

from __future__ import annotations

from typing import Dict

from ..errors import ConfigurationError
from .host import Host
from .packet import NO_AQ, Packet


class Hypervisor:
    """Tags AQ IDs onto a host's outgoing packets."""

    def __init__(self, host: Host) -> None:
        if host.on_transmit is not None:
            raise ConfigurationError(
                f"host {host.name} already has a transmit hook"
            )
        self.host = host
        self.outbound_aq_id = NO_AQ
        self._egress_for_dst: Dict[str, int] = {}
        self.tagged_packets = 0
        host.on_transmit = self._tag
        tele = host.sim.telemetry
        if tele is not None and tele.enabled:
            tele.metrics.add_collector(self._collect_metrics)

    def _collect_metrics(self, registry) -> None:
        registry.counter("hypervisor_tagged_packets", host=self.host.name).set(
            self.tagged_packets
        )

    # -- policy -----------------------------------------------------------------

    def set_outbound(self, aq_id: int) -> None:
        """All traffic this host originates belongs to this ingress AQ."""
        if aq_id < 0:
            raise ConfigurationError(f"AQ id must be >= 0, got {aq_id}")
        self.outbound_aq_id = aq_id

    def set_inbound_of(self, dst: str, aq_id: int) -> None:
        """Traffic toward ``dst`` must carry ``dst``'s egress AQ ID."""
        if aq_id < 0:
            raise ConfigurationError(f"AQ id must be >= 0, got {aq_id}")
        self._egress_for_dst[dst] = aq_id

    def clear_inbound_of(self, dst: str) -> None:
        self._egress_for_dst.pop(dst, None)

    # -- data path -----------------------------------------------------------------

    def _tag(self, packet: Packet) -> None:
        tagged = False
        if packet.aq_ingress_id == NO_AQ and self.outbound_aq_id != NO_AQ:
            packet.aq_ingress_id = self.outbound_aq_id
            tagged = True
        if packet.aq_egress_id == NO_AQ:
            egress = self._egress_for_dst.get(packet.dst, NO_AQ)
            if egress != NO_AQ:
                packet.aq_egress_id = egress
                tagged = True
        if tagged:
            self.tagged_packets += 1


def deploy_vm_profiles(controller, star, profile_rate_bps: float,
                       limit_bytes: float) -> Dict[str, Hypervisor]:
    """Convenience: give every host of a :class:`~repro.topology.star.Star`
    a bi-directional profile (ingress+egress AQs at the ToR, Table 3
    style) and install hypervisors that tag all traffic accordingly.

    Returns the per-host hypervisors. Mirrors the Figure 2 deployment with
    zero per-connection wiring.
    """
    from ..core.controller import AqRequest
    from ..core.feedback import drop_policy

    out_ids: Dict[str, int] = {}
    in_ids: Dict[str, int] = {}
    for vm in star.hosts:
        controller.register_resource(f"up:{vm}", star.config.link_rate_bps)
        controller.register_resource(f"down:{vm}", star.config.link_rate_bps)
        out_ids[vm] = controller.request(
            AqRequest(entity=f"{vm}:out", switch=star.SWITCH,
                      position="ingress", absolute_rate_bps=profile_rate_bps,
                      share_group=f"up:{vm}", policy=drop_policy(),
                      limit_bytes=limit_bytes)
        ).aq_id
        in_ids[vm] = controller.request(
            AqRequest(entity=f"{vm}:in", switch=star.SWITCH,
                      position="egress", absolute_rate_bps=profile_rate_bps,
                      share_group=f"down:{vm}", policy=drop_policy(),
                      limit_bytes=limit_bytes)
        ).aq_id

    hypervisors: Dict[str, Hypervisor] = {}
    for vm in star.hosts:
        hypervisor = Hypervisor(star.network.hosts[vm])
        hypervisor.set_outbound(out_ids[vm])
        for peer in star.hosts:
            if peer != vm:
                hypervisor.set_inbound_of(peer, in_ids[peer])
        hypervisors[vm] = hypervisor
    return hypervisors
