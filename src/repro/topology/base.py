"""Network container and generic wiring/routing.

:class:`Network` owns the simulator, hosts, switches, and links of one
scenario, and computes static shortest-path routes (BFS over the switch
graph). Topology builders (:mod:`repro.topology.dumbbell`,
:mod:`repro.topology.star`) produce configured networks for the paper's
Figure 5 setups.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import ConfigurationError, RoutingError
from ..net.host import Host
from ..net.link import Link
from ..net.switch import Switch
from ..queues.fifo import PhysicalFifoQueue
from ..sim.engine import Simulator
from ..sim.rng import RngRegistry
from ..units import MTU_BYTES


@dataclass
class QueueConfig:
    """Physical queue parameters applied to every switch port by default.

    ``ecn_threshold_bytes`` enables switch-level DCTCP marking; scenarios
    running AQ-managed DCTCP disable it (AQ generates per-entity ECN from
    the A-Gap instead, Section 3.3.2).
    """

    limit_bytes: int = 200 * MTU_BYTES
    ecn_threshold_bytes: Optional[int] = None
    collect_delays: bool = False

    def build(self, name: str = "", telemetry=None) -> PhysicalFifoQueue:
        return PhysicalFifoQueue(
            limit_bytes=self.limit_bytes,
            ecn_threshold_bytes=self.ecn_threshold_bytes,
            collect_delays=self.collect_delays,
            name=name,
            telemetry=telemetry,
        )


class Network:
    """All simulated elements of one scenario.

    ``telemetry`` (or the ambient active :class:`~repro.obs.Telemetry`,
    via the simulator) is propagated to every queue/switch/link built
    through this container.
    """

    def __init__(
        self, sim: Optional[Simulator] = None, seed: int = 0, telemetry=None
    ) -> None:
        self.sim = sim if sim is not None else Simulator(telemetry=telemetry)
        self.telemetry = self.sim.telemetry
        self.rng = RngRegistry(seed)
        self.hosts: Dict[str, Host] = {}
        self.switches: Dict[str, Switch] = {}
        self.links: Dict[str, Link] = {}
        self._next_flow_id = 0
        #: host -> the switch it is attached to (single-homed hosts).
        self._host_uplink: Dict[str, str] = {}
        #: adjacency between switches: name -> {neighbor: port_name}
        self._switch_adj: Dict[str, Dict[str, str]] = {}
        #: Armed fault injector when an ambient fault plan is active (the
        #: ``--faults`` CLI flag), mirroring the ambient-telemetry pickup.
        #: Targets resolve lazily at fire time, so arming before the
        #: topology is wired is safe.
        self.fault_injector = None
        from ..faults.injector import FaultInjector, get_active_fault_plan

        plan = get_active_fault_plan()
        if plan is not None:
            self.fault_injector = FaultInjector(plan, self)
            self.fault_injector.arm()

    # -- element creation ---------------------------------------------------------

    def add_host(self, name: str) -> Host:
        if name in self.hosts or name in self.switches:
            raise ConfigurationError(f"duplicate node name {name!r}")
        host = Host(self.sim, name)
        self.hosts[name] = host
        return host

    def add_switch(self, name: str) -> Switch:
        if name in self.hosts or name in self.switches:
            raise ConfigurationError(f"duplicate node name {name!r}")
        switch = Switch(self.sim, name)
        self.switches[name] = switch
        self._switch_adj[name] = {}
        return switch

    # -- wiring --------------------------------------------------------------------

    def connect_host(
        self,
        host_name: str,
        switch_name: str,
        rate_bps: float,
        prop_delay: float,
        queue_config: Optional[QueueConfig] = None,
    ) -> None:
        """Create the bidirectional access link between a host and a switch."""
        host = self.hosts[host_name]
        switch = self.switches[switch_name]
        queue_config = queue_config or QueueConfig()

        uplink = Link(
            self.sim, rate_bps, prop_delay, switch.receive,
            name=f"{host_name}->{switch_name}",
        )
        host.attach_link(uplink)
        self.links[uplink.name] = uplink

        downlink = Link(
            self.sim, rate_bps, prop_delay, host.receive,
            name=f"{switch_name}->{host_name}",
        )
        switch.add_port(
            host_name,
            queue_config.build(
                name=f"{switch_name}.{host_name}", telemetry=self.telemetry
            ),
            downlink,
        )
        self.links[downlink.name] = downlink
        self._host_uplink[host_name] = switch_name

    def connect_switches(
        self,
        a_name: str,
        b_name: str,
        rate_bps: float,
        prop_delay: float,
        queue_config: Optional[QueueConfig] = None,
    ) -> None:
        """Create the bidirectional trunk between two switches."""
        a = self.switches[a_name]
        b = self.switches[b_name]
        queue_config = queue_config or QueueConfig()

        ab = Link(self.sim, rate_bps, prop_delay, b.receive, name=f"{a_name}->{b_name}")
        a.add_port(
            b_name,
            queue_config.build(name=f"{a_name}.{b_name}", telemetry=self.telemetry),
            ab,
        )
        self.links[ab.name] = ab

        ba = Link(self.sim, rate_bps, prop_delay, a.receive, name=f"{b_name}->{a_name}")
        b.add_port(
            a_name,
            queue_config.build(name=f"{b_name}.{a_name}", telemetry=self.telemetry),
            ba,
        )
        self.links[ba.name] = ba

        self._switch_adj[a_name][b_name] = b_name
        self._switch_adj[b_name][a_name] = a_name

    # -- routing -------------------------------------------------------------------

    def install_routes(self) -> None:
        """Install next-hop routes on every switch for every host.

        Uses BFS over the switch graph; with the paper's dumbbell and star
        topologies every path is trivially unique.
        """
        for host_name, edge_switch in self._host_uplink.items():
            # The edge switch forwards directly out the host port.
            self.switches[edge_switch].add_route(host_name, host_name)
            # Every other switch forwards toward the edge switch.
            parents = self._bfs_parents(edge_switch)
            for switch_name in self.switches:
                if switch_name == edge_switch:
                    continue
                next_hop = self._next_hop(parents, switch_name, edge_switch)
                self.switches[switch_name].add_route(host_name, next_hop)

    def _bfs_parents(self, root: str) -> Dict[str, str]:
        parents: Dict[str, str] = {root: root}
        frontier = deque([root])
        while frontier:
            node = frontier.popleft()
            for neighbor in self._switch_adj[node]:
                if neighbor not in parents:
                    parents[neighbor] = node
                    frontier.append(neighbor)
        return parents

    @staticmethod
    def _next_hop(parents: Dict[str, str], src: str, dst: str) -> str:
        if src not in parents:
            raise RoutingError(f"switch {src} cannot reach {dst}")
        return parents[src]

    # -- conveniences -------------------------------------------------------------

    def allocate_flow_id(self) -> int:
        """Globally unique flow ID for a new transport connection."""
        self._next_flow_id += 1
        return self._next_flow_id


    def host_names(self) -> List[str]:
        return list(self.hosts)

    def link(self, src: str, dst: str) -> Link:
        name = f"{src}->{dst}"
        link = self.links.get(name)
        if link is None:
            raise ConfigurationError(f"no link {name}")
        return link

    def switch_port(self, switch_name: str, port_name: str):
        return self.switches[switch_name].ports[port_name]

    def run(self, until: float) -> int:
        """Run the shared simulator; returns events processed."""
        return self.sim.run(until=until)
