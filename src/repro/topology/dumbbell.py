"""Dumbbell topology (paper Figure 5a, used for all NS3 experiments).

``n`` sender hosts attach to a left switch, ``n`` receiver hosts to a right
switch, and the single left→right trunk is the bottleneck every entity
shares. Access links run at ``access_multiplier`` × the bottleneck rate so
the trunk — not the edge — is the contended resource.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..units import gbps, us
from .base import Network, QueueConfig


@dataclass
class DumbbellConfig:
    """Parameters of the dumbbell; defaults follow the paper's simulator
    setup (10 Gbps, 10 us propagation delay) before scaling."""

    num_left: int = 4
    num_right: int = 4
    bottleneck_rate_bps: float = gbps(10)
    access_multiplier: float = 4.0
    prop_delay: float = us(10)
    queue_config: QueueConfig = field(default_factory=QueueConfig)
    seed: int = 0


class Dumbbell:
    """A built dumbbell network with handy accessors."""

    LEFT_SWITCH = "s-left"
    RIGHT_SWITCH = "s-right"

    def __init__(self, config: Optional[DumbbellConfig] = None) -> None:
        self.config = config or DumbbellConfig()
        cfg = self.config
        self.network = Network(seed=cfg.seed)
        net = self.network

        net.add_switch(self.LEFT_SWITCH)
        net.add_switch(self.RIGHT_SWITCH)
        self.left_hosts: List[str] = []
        self.right_hosts: List[str] = []

        access_rate = cfg.bottleneck_rate_bps * cfg.access_multiplier
        for i in range(cfg.num_left):
            name = f"h-l{i}"
            net.add_host(name)
            net.connect_host(
                name, self.LEFT_SWITCH, access_rate, cfg.prop_delay, cfg.queue_config
            )
            self.left_hosts.append(name)
        for i in range(cfg.num_right):
            name = f"h-r{i}"
            net.add_host(name)
            net.connect_host(
                name, self.RIGHT_SWITCH, access_rate, cfg.prop_delay, cfg.queue_config
            )
            self.right_hosts.append(name)

        net.connect_switches(
            self.LEFT_SWITCH,
            self.RIGHT_SWITCH,
            cfg.bottleneck_rate_bps,
            cfg.prop_delay,
            cfg.queue_config,
        )
        net.install_routes()

    @property
    def sim(self):
        return self.network.sim

    @property
    def bottleneck_port(self):
        """The left switch's port onto the trunk — where contention happens."""
        return self.network.switch_port(self.LEFT_SWITCH, self.RIGHT_SWITCH)

    @property
    def bottleneck_switch(self):
        return self.network.switches[self.LEFT_SWITCH]

    @property
    def bottleneck_link(self):
        return self.network.link(self.LEFT_SWITCH, self.RIGHT_SWITCH)

    def base_rtt(self) -> float:
        """Zero-queueing round-trip time between a left and a right host."""
        # 3 hops each way; serialization excluded (negligible for ACKs).
        return 6 * self.config.prop_delay
