"""Star / single-ToR topology (paper Figures 2 and 5b, the testbed setup).

``n`` hosts (the paper's VMs) hang off one switch; the contended resources
are the per-host downlinks (inbound) and each host's uplink (outbound).
Used for the VM bi-directional bandwidth-guarantee experiments (Table 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..units import gbps, us
from .base import Network, QueueConfig


@dataclass
class StarConfig:
    """Parameters of the star; defaults follow the testbed (25 Gbps links)
    before scaling."""

    num_hosts: int = 4
    link_rate_bps: float = gbps(25)
    prop_delay: float = us(10)
    queue_config: QueueConfig = field(default_factory=QueueConfig)
    seed: int = 0
    host_prefix: str = "vm"


class Star:
    """A built star network."""

    SWITCH = "tor"

    def __init__(self, config: Optional[StarConfig] = None) -> None:
        self.config = config or StarConfig()
        cfg = self.config
        self.network = Network(seed=cfg.seed)
        net = self.network

        net.add_switch(self.SWITCH)
        self.hosts: List[str] = []
        for i in range(cfg.num_hosts):
            name = f"{cfg.host_prefix}{i}"
            net.add_host(name)
            net.connect_host(
                name, self.SWITCH, cfg.link_rate_bps, cfg.prop_delay, cfg.queue_config
            )
            self.hosts.append(name)
        net.install_routes()

    @property
    def sim(self):
        return self.network.sim

    @property
    def switch(self):
        return self.network.switches[self.SWITCH]

    def downlink_port(self, host_name: str):
        """The ToR port feeding ``host_name`` (inbound contention point)."""
        return self.network.switch_port(self.SWITCH, host_name)

    def base_rtt(self) -> float:
        """Zero-queueing round-trip time between two hosts."""
        return 4 * self.config.prop_delay
