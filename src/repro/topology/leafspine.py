"""Two-tier leaf-spine (Clos) topology with per-flow ECMP.

The paper's dumbbell and star isolate one bottleneck; a leaf-spine fabric
exercises the parts of AQ that only show up multi-hop and multi-path:

* AQ IDs matched at *every* switch a packet traverses (ingress AQs can be
  deployed on leaves and/or spines),
* the virtual queuing delay accumulating hop by hop (Section 3.3.2 —
  "accumulates the virtual queuing delay along the network path"),
* per-flow ECMP spreading an entity's flows over several spines while a
  single (per-switch) AQ still accounts each packet exactly once per hop.

Routing: hosts hang off leaves; leaf-to-leaf traffic picks a spine by
hashing the flow ID (per-flow ECMP, order-preserving within a flow).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import ConfigurationError, RoutingError
from ..net.packet import Packet
from ..units import gbps, us
from .base import Network, QueueConfig


@dataclass
class LeafSpineConfig:
    """Parameters of the fabric."""

    num_leaves: int = 2
    num_spines: int = 2
    hosts_per_leaf: int = 2
    host_link_bps: float = gbps(10)
    fabric_link_bps: float = gbps(10)
    prop_delay: float = us(10)
    queue_config: QueueConfig = field(default_factory=QueueConfig)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_leaves < 1 or self.num_spines < 1 or self.hosts_per_leaf < 1:
            raise ConfigurationError("leaf/spine/host counts must be >= 1")


class LeafSpine:
    """A built leaf-spine fabric with ECMP routing."""

    def __init__(self, config: Optional[LeafSpineConfig] = None) -> None:
        self.config = config or LeafSpineConfig()
        cfg = self.config
        self.network = Network(seed=cfg.seed)
        net = self.network

        self.leaves: List[str] = [f"leaf{i}" for i in range(cfg.num_leaves)]
        self.spines: List[str] = [f"spine{i}" for i in range(cfg.num_spines)]
        self.hosts: List[str] = []
        #: host -> its leaf switch.
        self.leaf_of: Dict[str, str] = {}

        for leaf in self.leaves:
            net.add_switch(leaf)
        for spine in self.spines:
            net.add_switch(spine)

        for li, leaf in enumerate(self.leaves):
            for h in range(cfg.hosts_per_leaf):
                name = f"h{li}-{h}"
                net.add_host(name)
                net.connect_host(
                    name, leaf, cfg.host_link_bps, cfg.prop_delay, cfg.queue_config
                )
                self.hosts.append(name)
                self.leaf_of[name] = leaf
            for spine in self.spines:
                net.connect_switches(
                    leaf, spine, cfg.fabric_link_bps, cfg.prop_delay, cfg.queue_config
                )

        self._install_ecmp_routes()

    @property
    def sim(self):
        return self.network.sim

    # -- ECMP routing -----------------------------------------------------------

    def _install_ecmp_routes(self) -> None:
        """Routes: leaves know their own hosts; remote hosts go via an
        ECMP choice among spines (resolved per packet via a routing hook);
        spines route every host down its leaf."""
        net = self.network
        for host, leaf in self.leaf_of.items():
            net.switches[leaf].add_route(host, host)
            for spine in self.spines:
                net.switches[spine].add_route(host, self.leaf_of[host])
        # Leaves need a route for remote hosts; Switch supports exactly one
        # next hop per destination, so ECMP is implemented by overriding
        # route_for with a flow-hash choice.
        for leaf in self.leaves:
            switch = net.switches[leaf]
            switch.route_for = self._make_ecmp_lookup(switch)  # type: ignore

    def _make_ecmp_lookup(self, switch):
        spines = self.spines
        leaf_of = self.leaf_of
        base_routes = dict(switch._routes)

        def route_for(dst: str, packet: Optional[Packet] = None):
            port = base_routes.get(dst)
            if port is not None:
                return port
            if dst not in leaf_of:
                raise RoutingError(f"switch {switch.name} has no route to {dst}")
            # Per-flow ECMP: hash the flow ID onto a spine uplink.
            flow_id = packet.flow_id if packet is not None else 0
            spine = spines[hash(flow_id) % len(spines)]
            return switch.ports[spine]

        return route_for

    def spine_for_flow(self, flow_id: int) -> str:
        """Which spine a flow's packets traverse (for tests/metering)."""
        return self.spines[hash(flow_id) % len(self.spines)]

    def base_rtt(self) -> float:
        """Zero-queueing RTT between hosts on different leaves."""
        return 8 * self.config.prop_delay
