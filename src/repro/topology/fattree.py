"""Fat-tree-lite fabric: pods of ToRs behind one agg switch, core layer.

The paper's scaling argument (Section 5) is about *fabrics*, not single
switches: thousands of queues across pods connected by a core layer.
This module builds the smallest topology with that structure:

* pod ``p`` = one aggregation switch ``agg{p}``, ``tors_per_pod`` ToR
  switches ``t{p}-{i}``, and ``hosts_per_tor`` hosts ``h{p}-{i}-{j}``
  under each ToR;
* ``num_cores`` core switches ``core{c}``, each connected to every agg
  (a 2-ary folded Clos with one agg per pod — "lite" because the paper's
  experiments never need multiple aggs per pod);
* routing is structural, not BFS: ToRs send unknown destinations up to
  their agg, aggs parse the destination pod from the host name and pick
  a core by ``flow_id % num_cores`` (per-flow ECMP, like
  :mod:`repro.topology.leafspine`), cores send down to the destination
  pod's agg.

The same builder serves two callers:

* :func:`build_fattree` with no boundary context — a plain single-
  process :class:`~repro.topology.base.Network` (unit tests, small
  runs);
* :func:`build_fattree` with a *boundary context* (from
  :mod:`repro.sim.shard`) — builds only the elements **owned** by one
  partition and replaces every agg<->core link with a
  :class:`~repro.net.link.BoundaryLink` capture/import pair. Crucially
  the agg<->core links are *always* routed through the boundary
  machinery when a context is given, even when both endpoints share a
  partition (including ``shards=1``): the cut set depends only on the
  topology, so the event pattern — and therefore every results digest —
  is identical at any shard count.

Partitioning (:class:`FatTreePlan`) is by pod: pod ``p`` (agg + ToRs +
hosts) maps to partition ``p % shards`` and core ``c`` to ``c % shards``,
so the only links crossing partitions are agg<->core — the ToR-pod cuts
of ROADMAP item 2. The conservative lookahead is the minimum cut-link
propagation delay, which here is simply ``core_prop_delay``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import ConfigurationError
from ..topology.base import Network, QueueConfig
from ..units import MTU_BYTES, gbps, us


@dataclass(frozen=True)
class FatTreeConfig:
    """Shape and line parameters of one fat-tree-lite fabric."""

    pods: int = 4
    tors_per_pod: int = 2
    hosts_per_tor: int = 2
    num_cores: int = 2
    seed: int = 1

    host_rate_bps: float = gbps(10)
    host_prop_delay: float = us(2)
    pod_rate_bps: float = gbps(20)
    pod_prop_delay: float = us(5)
    core_rate_bps: float = gbps(40)
    #: Propagation delay of every agg<->core link. This is the shard
    #: lookahead: one barrier exchange per ``core_prop_delay`` of
    #: simulated time, so larger values mean fewer synchronization
    #: rounds (datacenter inter-pod fiber runs are genuinely the long
    #: wires of the fabric).
    core_prop_delay: float = us(50)

    queue_limit_bytes: int = 200 * MTU_BYTES

    def __post_init__(self) -> None:
        if self.pods < 1 or self.tors_per_pod < 1 or self.hosts_per_tor < 1:
            raise ConfigurationError(
                f"fat-tree needs >=1 pod/tor/host, got {self.pods}/"
                f"{self.tors_per_pod}/{self.hosts_per_tor}"
            )
        if self.num_cores < 1:
            raise ConfigurationError(f"need >=1 core switch, got {self.num_cores}")
        if self.core_prop_delay <= 0:
            raise ConfigurationError(
                "core_prop_delay must be positive (it is the shard lookahead)"
            )

    # -- naming --------------------------------------------------------------

    def agg_name(self, pod: int) -> str:
        return f"agg{pod}"

    def tor_name(self, pod: int, tor: int) -> str:
        return f"t{pod}-{tor}"

    def host_name(self, pod: int, tor: int, host: int) -> str:
        return f"h{pod}-{tor}-{host}"

    def core_name(self, core: int) -> str:
        return f"core{core}"

    def host_names(self) -> List[str]:
        """Every host, in global build order."""
        return [
            self.host_name(p, i, j)
            for p in range(self.pods)
            for i in range(self.tors_per_pod)
            for j in range(self.hosts_per_tor)
        ]


#: Parse results for fabric node names; see :func:`node_location`.
LOC_HOST = "host"
LOC_TOR = "tor"
LOC_AGG = "agg"
LOC_CORE = "core"


def node_location(name: str) -> Tuple[str, int]:
    """Classify a fabric node name: ``(kind, pod-or-core-index)``.

    Raises :class:`ConfigurationError` for names outside the fat-tree
    naming scheme — the partitioner must never silently guess an owner.
    """
    try:
        if name.startswith("agg"):
            return LOC_AGG, int(name[3:])
        if name.startswith("core"):
            return LOC_CORE, int(name[4:])
        if name.startswith("t"):
            return LOC_TOR, int(name[1:].split("-", 1)[0])
        if name.startswith("h"):
            return LOC_HOST, int(name[1:].split("-", 1)[0])
    except ValueError:
        pass
    raise ConfigurationError(f"not a fat-tree node name: {name!r}")


@dataclass(frozen=True)
class CutLink:
    """One simplex agg<->core link, the unit of boundary exchange.

    ``link_id`` is the position in the stable global enumeration (see
    :meth:`FatTreePlan.cut_links`); boundary batches are ordered by
    ``(arrival_time, link_id, departure_seq)``, so the id must not
    depend on the shard count — and it does not: the enumeration is a
    pure function of the topology.
    """

    link_id: int
    src: str
    dst: str
    src_partition: int
    dst_partition: int

    @property
    def name(self) -> str:
        return f"{self.src}->{self.dst}"


class FatTreePlan:
    """Partition assignment and cut-link enumeration for one config."""

    def __init__(self, config: FatTreeConfig, shards: int) -> None:
        if shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {shards}")
        self.config = config
        self.shards = shards
        self._cuts: List[CutLink] = []
        link_id = 0
        for p in range(config.pods):
            agg = config.agg_name(p)
            for c in range(config.num_cores):
                core = config.core_name(c)
                self._cuts.append(CutLink(
                    link_id, agg, core, self.partition_of(agg),
                    self.partition_of(core),
                ))
                self._cuts.append(CutLink(
                    link_id + 1, core, agg, self.partition_of(core),
                    self.partition_of(agg),
                ))
                link_id += 2

    def partition_of(self, node: str) -> int:
        """The partition owning ``node`` (pods round-robin, cores too)."""
        kind, index = node_location(node)
        return index % self.shards

    def owner_of_target(self, target: str) -> int:
        """Partition owning a fault-plan target (a node, or a link
        ``"src->dst"`` — owned by the sending side, where the queue,
        transmitter, and fault state live)."""
        if "->" in target:
            target = target.split("->", 1)[0]
        return self.partition_of(target)

    def cut_links(self) -> List[CutLink]:
        return list(self._cuts)

    @property
    def lookahead(self) -> float:
        """Conservative lookahead: the minimum cut-link propagation
        delay. Every cut link here shares ``core_prop_delay``."""
        return self.config.core_prop_delay


class FatTree:
    """A built fabric (or one partition of it) plus its metadata."""

    def __init__(
        self,
        config: FatTreeConfig,
        network: Network,
        plan: Optional[FatTreePlan] = None,
        partition: Optional[int] = None,
    ) -> None:
        self.config = config
        self.network = network
        self.plan = plan
        self.partition = partition

    @property
    def sim(self):
        return self.network.sim

    def owns(self, node: str) -> bool:
        if self.plan is None or self.partition is None:
            return True
        return self.plan.partition_of(node) == self.partition


def _install_routes(config: FatTreeConfig, net: Network, loc_cache: Dict[str, Tuple[int, int]]) -> None:
    """Install structural ``route_for`` closures on every built switch."""

    def host_loc(dst: str) -> Tuple[int, int]:
        loc = loc_cache.get(dst)
        if loc is None:
            head = dst[1:].split("-")
            loc = loc_cache[dst] = (int(head[0]), int(head[1]))
        return loc

    num_cores = config.num_cores
    for p in range(config.pods):
        for i in range(config.tors_per_pod):
            tor = net.switches.get(config.tor_name(p, i))
            if tor is None:
                continue
            agg_port = tor.ports[config.agg_name(p)]

            def tor_route(dst, packet=None, _ports=tor.ports, _up=agg_port):
                port = _ports.get(dst)
                return port if port is not None else _up

            tor.route_for = tor_route

        agg = net.switches.get(config.agg_name(p))
        if agg is not None:
            tor_ports = [
                agg.ports[config.tor_name(p, i)]
                for i in range(config.tors_per_pod)
            ]
            core_ports = [
                agg.ports[config.core_name(c)] for c in range(num_cores)
            ]

            def agg_route(
                dst, packet=None, _pod=p, _tors=tor_ports, _cores=core_ports
            ):
                pod, tor_idx = host_loc(dst)
                if pod == _pod:
                    return _tors[tor_idx]
                # Per-flow ECMP across the core layer, deterministic in
                # the flow id (leafspine's hash discipline).
                return _cores[packet.flow_id % num_cores]

            agg.route_for = agg_route

    for c in range(num_cores):
        core = net.switches.get(config.core_name(c))
        if core is None:
            continue
        agg_ports = {
            p: core.ports[config.agg_name(p)] for p in range(config.pods)
        }

        def core_route(dst, packet=None, _aggs=agg_ports):
            return _aggs[host_loc(dst)[0]]

        core.route_for = core_route


def build_fattree(
    config: Optional[FatTreeConfig] = None,
    boundary=None,
) -> FatTree:
    """Build the fabric (or the partition a boundary context owns).

    ``boundary`` is a :class:`repro.sim.shard.BoundaryContext`-shaped
    object (``partition_id``, ``plan``, ``make_egress(sim, cut, ...)``,
    ``register_import(cut, handler)``); ``None`` builds the whole fabric
    single-process with ordinary core links.
    """
    config = config or FatTreeConfig()
    plan = boundary.plan if boundary is not None else None
    partition = boundary.partition_id if boundary is not None else None

    def owned(node: str) -> bool:
        return plan is None or plan.partition_of(node) == partition

    net = Network(seed=config.seed)
    queue_cfg = QueueConfig(limit_bytes=config.queue_limit_bytes)

    # 1. Switches, in fixed global order (cores, then pods).
    for c in range(config.num_cores):
        name = config.core_name(c)
        if owned(name):
            net.add_switch(name)
    for p in range(config.pods):
        agg = config.agg_name(p)
        if not owned(agg):
            continue
        net.add_switch(agg)
        for i in range(config.tors_per_pod):
            tor = config.tor_name(p, i)
            net.add_switch(tor)
            net.connect_switches(
                tor, agg, config.pod_rate_bps, config.pod_prop_delay,
                queue_config=queue_cfg,
            )
            for j in range(config.hosts_per_tor):
                host = config.host_name(p, i, j)
                net.add_host(host)
                net.connect_host(
                    host, tor, config.host_rate_bps, config.host_prop_delay,
                    queue_config=queue_cfg,
                )

    # 2. The agg<->core layer. With a boundary context *every* such link
    #    is a capture/import pair — even self-partition ones — so the
    #    event pattern cannot depend on the shard count.
    if boundary is None:
        for p in range(config.pods):
            agg = config.agg_name(p)
            for c in range(config.num_cores):
                net.connect_switches(
                    agg, config.core_name(c), config.core_rate_bps,
                    config.core_prop_delay, queue_config=queue_cfg,
                )
    else:
        for cut in plan.cut_links():
            if cut.src_partition == partition:
                src_switch = net.switches[cut.src]
                link = boundary.make_egress(
                    net.sim, cut, config.core_rate_bps, config.core_prop_delay,
                )
                queue = queue_cfg.build(
                    name=f"{cut.src}.{cut.dst}", telemetry=net.telemetry
                )
                src_switch.add_port(cut.dst, queue, link)
                net.links[cut.name] = link
            if cut.dst_partition == partition:
                boundary.register_import(cut, net.switches[cut.dst].receive)

    # 3. Structural routing over whatever was built.
    _install_routes(config, net, {})
    return FatTree(config, net, plan=plan, partition=partition)
