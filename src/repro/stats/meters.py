"""Measurement instruments: windowed throughput, rate ranges, percentiles."""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..sim.engine import PeriodicTask, Simulator


class ThroughputMeter:
    """Windowed throughput series for one byte stream.

    Feed it bytes (typically from a receiver's ``on_deliver`` callback);
    every ``interval`` it records the rate of the elapsed window. The
    series is what the paper's throughput-over-time figures plot, and rate
    *ranges* over the measurement period are what Table 3 reports.
    """

    def __init__(self, sim: Simulator, interval: float, name: str = "") -> None:
        if interval <= 0:
            raise ConfigurationError(f"interval must be positive, got {interval}")
        self.sim = sim
        self.interval = interval
        self.name = name
        self.total_bytes = 0
        self._window_bytes = 0
        self._window_start = sim.now
        self._last_add_time = sim.now
        self.samples: List[Tuple[float, float]] = []  # (window end time, bps)
        self._task = PeriodicTask(sim, interval, self._sample)
        self._stopped = False

    def add(self, nbytes: int, now: Optional[float] = None) -> None:
        """Record delivered bytes (signature matches on_deliver hooks).

        ``now`` times the delivery so :meth:`stop` can close out a final
        partial window; callbacks that omit it fall back to ``sim.now``
        (identical in-run, since callbacks fire at the current time).
        """
        self.total_bytes += nbytes
        self._window_bytes += nbytes
        self._last_add_time = self.sim.now if now is None else now

    def _sample(self) -> None:
        rate = self._window_bytes * 8.0 / self.interval
        self.samples.append((self.sim.now, rate))
        self._window_bytes = 0
        self._window_start = self.sim.now

    def stop(self) -> None:
        """Stop sampling, flushing any bytes of the final partial window.

        Without the flush, a run whose duration is not an exact multiple
        of ``interval`` silently discards the tail bytes, biasing short-run
        mean rates low.
        """
        if self._stopped:
            return
        self._stopped = True
        self._task.stop()
        if self._window_bytes > 0:
            end = max(self.sim.now, self._last_add_time)
            elapsed = end - self._window_start
            # Sub-1%-window tails yield wild rates from float jitter; fold
            # them into the duration-based summaries instead.
            if elapsed > 0.01 * self.interval:
                self.samples.append((end, self._window_bytes * 8.0 / elapsed))
                self._window_bytes = 0
                self._window_start = end

    # -- summaries ----------------------------------------------------------------

    def rates(self, after: float = 0.0, before: float = math.inf) -> List[float]:
        """Window rates with endpoints in ``(after, before]``."""
        return [r for t, r in self.samples if after < t <= before]

    def mean_rate(self, after: float = 0.0, before: float = math.inf) -> float:
        rates = self.rates(after, before)
        return sum(rates) / len(rates) if rates else 0.0

    def rate_range(
        self, after: float = 0.0, before: float = math.inf,
        low_percentile: float = 5.0, high_percentile: float = 95.0,
    ) -> Tuple[float, float]:
        """(low, high) percentile of window rates — a robust "range"
        matching how Table 3 reports min~max while ignoring freak windows."""
        rates = self.rates(after, before)
        if not rates:
            return (0.0, 0.0)
        return (percentile(rates, low_percentile), percentile(rates, high_percentile))

    def average_rate_over(self, duration: float) -> float:
        """Total bytes divided by a known duration."""
        if duration <= 0:
            raise ConfigurationError(f"duration must be positive, got {duration}")
        return self.total_bytes * 8.0 / duration


def percentile(values: Sequence[float], pct: float) -> float:
    """Linear-interpolation percentile (``pct`` in [0, 100])."""
    if not values:
        raise ConfigurationError("percentile of empty sequence")
    if not 0.0 <= pct <= 100.0:
        raise ConfigurationError(f"percentile must be in [0, 100], got {pct}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = pct / 100.0 * (len(ordered) - 1)
    lo = int(math.floor(rank))
    hi = int(math.ceil(rank))
    if lo == hi:
        return ordered[lo]
    frac = rank - lo
    value = ordered[lo] * (1 - frac) + ordered[hi] * frac
    # Clamp float round-off so the result stays within the data range.
    return min(max(value, ordered[lo]), ordered[hi])


class CompletionTracker:
    """Tracks when each member of a set of flows completes.

    The paper's "workload completion time" of an entity is the time from
    the experiment start until the entity's last flow finishes.
    """

    def __init__(self, expected: int) -> None:
        if expected <= 0:
            raise ConfigurationError("expected flow count must be positive")
        self.expected = expected
        self.completed = 0
        self.last_completion_time: Optional[float] = None
        self.completion_times: List[float] = []

    def on_complete(self, _conn, now: float) -> None:
        self.completed += 1
        self.completion_times.append(now)
        self.last_completion_time = now

    @property
    def all_done(self) -> bool:
        return self.completed >= self.expected

    def workload_completion_time(self) -> float:
        """Time of the last completion; raises if the workload is unfinished."""
        if not self.all_done or self.last_completion_time is None:
            raise ConfigurationError(
                f"workload incomplete: {self.completed}/{self.expected} flows done"
            )
        return self.last_completion_time
