"""Flow-completion-time statistics.

FCT — and especially FCT *slowdown* (completion time divided by the
ideal transfer time at line rate) — is the canonical datacenter metric
for how small flows fare under contention. The paper's application-layer
motivation ("unpredictable performance that can vary by an order of
magnitude") is an FCT-variance statement, and AQ's isolation shows up as
small-flow slowdowns staying flat when an aggressive entity shares the
fabric.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from .meters import percentile


@dataclass(frozen=True)
class FlowRecord:
    """One completed flow.

    ``slowdown`` is ``inf`` when the ideal FCT is zero or negative (a
    zero-size flow, or a collector configured without a meaningful
    reference rate). Summaries must treat such records as unknown rather
    than letting one ``inf`` poison a bin mean — see
    :meth:`FctCollector.summary`.
    """

    size_bytes: int
    fct: float
    ideal_fct: float

    @property
    def slowdown(self) -> float:
        return self.fct / self.ideal_fct if self.ideal_fct > 0 else float("inf")


#: Default size-bin edges in bytes: small / medium / large web-search flows.
DEFAULT_BIN_EDGES = (100 * 1024, 1024 * 1024)


class FctCollector:
    """Collects per-flow completion records and summarizes them."""

    def __init__(
        self,
        reference_rate_bps: float,
        base_rtt: float = 0.0,
        bin_edges: Sequence[int] = DEFAULT_BIN_EDGES,
    ) -> None:
        if reference_rate_bps <= 0:
            raise ConfigurationError("reference rate must be positive")
        self.reference_rate_bps = reference_rate_bps
        self.base_rtt = base_rtt
        self.bin_edges = tuple(bin_edges)
        self.records: List[FlowRecord] = []

    def ideal_fct(self, size_bytes: int) -> float:
        """Transfer time at the reference rate plus one base RTT."""
        return size_bytes * 8.0 / self.reference_rate_bps + self.base_rtt

    def record(self, size_bytes: int, fct: float) -> None:
        if size_bytes <= 0 or fct <= 0:
            raise ConfigurationError("size and FCT must be positive")
        self.records.append(
            FlowRecord(size_bytes, fct, self.ideal_fct(size_bytes))
        )

    def on_complete_hook(self, size_bytes: int):
        """A `(conn, now)` callback factory compatible with
        :class:`~repro.transport.tcp.TcpConnection`'s ``on_complete``."""

        def hook(conn, now: float) -> None:
            self.record(size_bytes, conn.completion_time)

        return hook

    # -- summaries ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def _bin_label(self, size_bytes: int) -> str:
        previous = 0
        for edge in self.bin_edges:
            if size_bytes <= edge:
                return f"({previous}, {edge}]B"
            previous = edge
        return f">{previous}B"

    def slowdowns(
        self, bin_label: Optional[str] = None, finite_only: bool = False
    ) -> List[float]:
        values = [
            r.slowdown
            for r in self.records
            if bin_label is None or self._bin_label(r.size_bytes) == bin_label
        ]
        if finite_only:
            values = [v for v in values if math.isfinite(v)]
        return values

    def bins(self) -> List[str]:
        labels = []
        previous = 0
        for edge in self.bin_edges:
            labels.append(f"({previous}, {edge}]B")
            previous = edge
        labels.append(f">{previous}B")
        return labels

    def summary(
        self, percentiles: Tuple[float, ...] = (50.0, 95.0, 99.0)
    ) -> Dict[str, Dict[str, float]]:
        """Per-bin slowdown percentiles: ``{bin: {"p50": ..., "n": ...}}``.

        Non-finite slowdowns (records with a zero ideal FCT) are excluded
        from every percentile/mean and reported separately per bin as
        ``n_nonfinite`` — one degenerate record must not turn a bin's
        mean into ``inf``.
        """
        out: Dict[str, Dict[str, float]] = {}
        for label in self.bins():
            values = self.slowdowns(label)
            finite = [v for v in values if math.isfinite(v)]
            if not values:
                continue
            stats: Dict[str, float] = {}
            if finite:
                stats.update(
                    {f"p{int(p)}": percentile(finite, p) for p in percentiles}
                )
                stats["mean"] = sum(finite) / len(finite)
            stats["n"] = float(len(finite))
            if len(finite) != len(values):
                stats["n_nonfinite"] = float(len(values) - len(finite))
            out[label] = stats
        return out

    def overall_p99_slowdown(self) -> float:
        values = self.slowdowns(finite_only=True)
        if not values:
            raise ConfigurationError("no flows with finite slowdowns recorded")
        return percentile(values, 99.0)
