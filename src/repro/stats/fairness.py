"""Fairness metrics used by the evaluation."""

from __future__ import annotations

from typing import Sequence

from ..errors import ConfigurationError


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index: 1.0 is perfectly fair, 1/n is maximally unfair."""
    if not values:
        raise ConfigurationError("Jain index of empty sequence")
    if any(v < 0 for v in values):
        raise ConfigurationError("Jain index requires non-negative values")
    total = sum(values)
    squares = sum(v * v for v in values)
    if total == 0 or squares == 0.0:
        # All zero — or so close that the squares underflow to zero.
        return 1.0
    return total * total / (len(values) * squares)


def entity_fairness(completion_time_a: float, completion_time_b: float) -> float:
    """The paper's entity fairness: shorter completion time over longer.

    1.0 means the two entities finished together (fair share); the paper's
    Figure 7 reports ~0.14 for PQ at 8 VMs (a 7.2x gap).
    """
    if completion_time_a <= 0 or completion_time_b <= 0:
        raise ConfigurationError("completion times must be positive")
    shorter = min(completion_time_a, completion_time_b)
    longer = max(completion_time_a, completion_time_b)
    return shorter / longer


def throughput_ratio(a_bps: float, b_bps: float) -> float:
    """min/max throughput ratio between two entities (Table 2 shape)."""
    if a_bps < 0 or b_bps < 0:
        raise ConfigurationError("throughputs must be non-negative")
    if max(a_bps, b_bps) == 0:
        return 1.0
    return min(a_bps, b_bps) / max(a_bps, b_bps)
