"""Time-series utilities for analyzing experiment output.

Small, dependency-free helpers used by benches, examples, and tests to
post-process :class:`~repro.stats.meters.ThroughputMeter` samples:
smoothing, settling-time detection (how long after a membership change an
entity reaches its new share — the Figure 9 question), and coefficient of
variation (the "predictable performance" metric of Section 2.1).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from ..errors import ConfigurationError

Series = Sequence[Tuple[float, float]]  # (time, value)


def moving_average(series: Series, window: int) -> List[Tuple[float, float]]:
    """Trailing moving average over ``window`` samples."""
    if window < 1:
        raise ConfigurationError(f"window must be >= 1, got {window}")
    out: List[Tuple[float, float]] = []
    acc = 0.0
    values: List[float] = []
    for time, value in series:
        values.append(value)
        acc += value
        if len(values) > window:
            acc -= values.pop(0)
        out.append((time, acc / len(values)))
    return out


def settling_time(
    series: Series,
    target: float,
    tolerance: float = 0.1,
    start: float = 0.0,
    hold_samples: int = 3,
) -> Optional[float]:
    """First time after ``start`` at which the series enters and *stays*
    (for ``hold_samples`` consecutive samples) within ``tolerance``
    (fractional) of ``target``. ``None`` if it never settles.
    """
    if target <= 0:
        raise ConfigurationError("target must be positive")
    if hold_samples < 1:
        raise ConfigurationError("hold_samples must be >= 1")
    run_start: Optional[float] = None
    run_length = 0
    for time, value in series:
        if time < start:
            continue
        if abs(value - target) <= tolerance * target:
            if run_length == 0:
                run_start = time
            run_length += 1
            if run_length >= hold_samples:
                return run_start
        else:
            run_length = 0
            run_start = None
    return None


def coefficient_of_variation(values: Sequence[float]) -> float:
    """Std-dev over mean — the throughput-predictability metric."""
    if not values:
        raise ConfigurationError("empty sequence")
    mean = sum(values) / len(values)
    if mean == 0:
        return 0.0
    variance = sum((v - mean) ** 2 for v in values) / len(values)
    return math.sqrt(variance) / abs(mean)


def integrate(series: Series) -> float:
    """Trapezoidal integral of the series over its time span (e.g. bytes
    from a rate series)."""
    total = 0.0
    for (t0, v0), (t1, v1) in zip(series, series[1:]):
        if t1 < t0:
            raise ConfigurationError("series times must be non-decreasing")
        total += (v0 + v1) / 2.0 * (t1 - t0)
    return total


def downsample(series: Series, factor: int) -> List[Tuple[float, float]]:
    """Every ``factor``-th sample, averaging the skipped ones."""
    if factor < 1:
        raise ConfigurationError(f"factor must be >= 1, got {factor}")
    out: List[Tuple[float, float]] = []
    bucket: List[Tuple[float, float]] = []
    for point in series:
        bucket.append(point)
        if len(bucket) == factor:
            time = bucket[-1][0]
            value = sum(v for _, v in bucket) / len(bucket)
            out.append((time, value))
            bucket = []
    if bucket:
        out.append((bucket[-1][0], sum(v for _, v in bucket) / len(bucket)))
    return out
