"""Packet tracing: record and summarize packets at any tap point.

A :class:`PacketTrace` attaches to switch taps or host receive taps and
records compact per-packet records (time, flow, size, headers of
interest). Summaries answer the questions experiments keep asking —
per-flow/per-entity byte counts, retransmission counts, mark rates —
without every scenario reinventing its own counters.

For system-wide, typed event tracing (drops, ECN marks, A-Gap updates,
cwnd changes) use :mod:`repro.obs` — its :class:`~repro.obs.TraceBus`
subsumes this tap mechanism for everything except the per-packet
payload-level summaries kept here.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..net.packet import ACK, DATA, Packet, UDP


@dataclass(frozen=True)
class TraceRecord:
    """One observed packet."""

    time: float
    kind: int
    flow_id: int
    size: int
    seq: int
    ce: bool
    aq_ingress_id: int
    retransmission: bool


class PacketTrace:
    """A bounded in-memory packet recorder."""

    def __init__(self, max_records: Optional[int] = None) -> None:
        self.records: List[TraceRecord] = []
        self.max_records = max_records
        self.truncated = False

    # -- tap interfaces --------------------------------------------------------

    def switch_tap(self, packet: Packet) -> None:
        """Use with :meth:`repro.net.switch.Switch.add_tap` (no timestamp
        available at that layer; the record carries the enqueue time)."""
        self._record(packet, packet.enqueue_time)

    def host_tap(self, packet: Packet, now: float) -> None:
        """Use with :attr:`repro.net.host.Host.receive_taps`."""
        self._record(packet, now)

    def _record(self, packet: Packet, time: float) -> None:
        if self.max_records is not None and len(self.records) >= self.max_records:
            self.truncated = True
            return
        self.records.append(
            TraceRecord(
                time=time,
                kind=packet.kind,
                flow_id=packet.flow_id,
                size=packet.size,
                seq=packet.seq,
                ce=packet.ce,
                aq_ingress_id=packet.aq_ingress_id,
                retransmission=packet.retransmission,
            )
        )

    # -- summaries -----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def bytes_by_flow(self, data_only: bool = True) -> Dict[int, int]:
        totals: Dict[int, int] = defaultdict(int)
        for record in self.records:
            if data_only and record.kind == ACK:
                continue
            totals[record.flow_id] += record.size
        return dict(totals)

    def bytes_by_entity(self) -> Dict[int, int]:
        """Bytes per AQ ingress ID (0 = untagged)."""
        totals: Dict[int, int] = defaultdict(int)
        for record in self.records:
            if record.kind != ACK:
                totals[record.aq_ingress_id] += record.size
        return dict(totals)

    def retransmission_count(self) -> int:
        return sum(1 for r in self.records if r.retransmission)

    def ce_mark_fraction(self) -> float:
        """Fraction of data packets carrying a CE mark."""
        data = [r for r in self.records if r.kind in (DATA, UDP)]
        if not data:
            return 0.0
        return sum(1 for r in data if r.ce) / len(data)

    def interarrival_times(self, flow_id: Optional[int] = None) -> List[float]:
        times = [
            r.time
            for r in self.records
            if flow_id is None or r.flow_id == flow_id
        ]
        return [b - a for a, b in zip(times, times[1:])]

    def rate_bps(self, duration: float, data_only: bool = True) -> float:
        """Aggregate observed rate over a known duration."""
        total = sum(
            r.size
            for r in self.records
            if not (data_only and r.kind == ACK)
        )
        return total * 8.0 / duration if duration > 0 else 0.0
