"""Unit helpers and physical constants used throughout the simulator.

Conventions (chosen once, used everywhere):

* **time** is in seconds (``float``),
* **rates** are in bits per second,
* **sizes** are in bytes (``int`` on the wire, ``float`` in fluid math).

The helpers below exist so that scenario code reads like the paper
("a 10 Gbps link", "a 15 ms interval") instead of bare exponents.
"""

from __future__ import annotations

# --- rate units (bits per second) -------------------------------------------

BPS = 1.0
KBPS = 1e3
MBPS = 1e6
GBPS = 1e9


def gbps(value: float) -> float:
    """Convert gigabits/second to the canonical bits/second."""
    return value * GBPS


def mbps(value: float) -> float:
    """Convert megabits/second to the canonical bits/second."""
    return value * MBPS


def kbps(value: float) -> float:
    """Convert kilobits/second to the canonical bits/second."""
    return value * KBPS


# --- size units (bytes) ------------------------------------------------------

BYTE = 1
KB = 1000
MB = 1000 * 1000
GB = 1000 * 1000 * 1000
KIB = 1024
MIB = 1024 * 1024


def kilobytes(value: float) -> int:
    """Convert kilobytes (10^3) to bytes, rounded to an integer."""
    return int(round(value * KB))


def megabytes(value: float) -> int:
    """Convert megabytes (10^6) to bytes, rounded to an integer."""
    return int(round(value * MB))


# --- time units (seconds) ----------------------------------------------------

SECOND = 1.0
MS = 1e-3
US = 1e-6
NS = 1e-9


def ms(value: float) -> float:
    """Convert milliseconds to seconds."""
    return value * MS


def us(value: float) -> float:
    """Convert microseconds to seconds."""
    return value * US


# --- packet constants ---------------------------------------------------------

#: Default maximum transmission unit in bytes (Ethernet payload + headers).
MTU_BYTES = 1500

#: Default maximum segment size carried by one data packet, in bytes.
MSS_BYTES = 1460

#: Size of a pure acknowledgement packet, in bytes.
ACK_BYTES = 64

#: Per-packet header overhead assumed by the MSS/MTU split, in bytes.
HEADER_BYTES = MTU_BYTES - MSS_BYTES


def transmission_time(size_bytes: float, rate_bps: float) -> float:
    """Serialization delay of ``size_bytes`` on a link of ``rate_bps``.

    Raises :class:`ValueError` for a non-positive rate because a zero-rate
    link would silently wedge the event loop.
    """
    if rate_bps <= 0:
        raise ValueError(f"link rate must be positive, got {rate_bps}")
    return (size_bytes * 8.0) / rate_bps


def rate_to_bytes_per_second(rate_bps: float) -> float:
    """Convert a bits/second rate into bytes/second (used by A-Gap math)."""
    return rate_bps / 8.0


def format_rate(rate_bps: float) -> str:
    """Human-readable rate, e.g. ``format_rate(9.3e9) == '9.30Gbps'``."""
    if rate_bps >= GBPS:
        return f"{rate_bps / GBPS:.2f}Gbps"
    if rate_bps >= MBPS:
        return f"{rate_bps / MBPS:.2f}Mbps"
    if rate_bps >= KBPS:
        return f"{rate_bps / KBPS:.2f}Kbps"
    return f"{rate_bps:.0f}bps"


def format_size(size_bytes: float) -> str:
    """Human-readable size, e.g. ``format_size(2_000_000) == '2.00MB'``."""
    if size_bytes >= GB:
        return f"{size_bytes / GB:.2f}GB"
    if size_bytes >= MB:
        return f"{size_bytes / MB:.2f}MB"
    if size_bytes >= KB:
        return f"{size_bytes / KB:.2f}KB"
    return f"{size_bytes:.0f}B"


def format_time(seconds: float) -> str:
    """Human-readable duration, e.g. ``format_time(0.0021) == '2.10ms'``."""
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= MS:
        return f"{seconds / MS:.2f}ms"
    if seconds >= US:
        return f"{seconds / US:.2f}us"
    return f"{seconds / NS:.1f}ns"
