"""Name-based construction of CC algorithms.

Scenario configs refer to CCs by the names the paper uses ("cubic",
"newreno", "illinois", "dctcp", "swift"); the registry builds instances and
exposes each algorithm's feedback family so the AQ controller can configure
the matching feedback policy.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..errors import ConfigurationError
from .base import CongestionControl
from .bbr import Bbr
from .cubic import Cubic
from .dctcp import Dctcp
from .illinois import Illinois
from .newreno import NewReno
from .swift import Swift
from .timely import Timely

_FACTORIES: Dict[str, Callable[..., CongestionControl]] = {
    "cubic": Cubic,
    "newreno": NewReno,
    "illinois": Illinois,
    "dctcp": Dctcp,
    "swift": Swift,
    "timely": Timely,
    "bbr": Bbr,
}


def available_ccs() -> list:
    """Names of all registered CC algorithms."""
    return sorted(_FACTORIES)


def register_cc(name: str, factory: Callable[..., CongestionControl]) -> None:
    """Add a custom CC (used by tests and extensions)."""
    key = name.lower()
    if key in _FACTORIES:
        raise ConfigurationError(f"CC {name!r} is already registered")
    _FACTORIES[key] = factory


def make_cc(name: str, **kwargs) -> CongestionControl:
    """Instantiate a CC by name, forwarding keyword options."""
    factory = _FACTORIES.get(name.lower())
    if factory is None:
        raise ConfigurationError(
            f"unknown CC {name!r}; available: {', '.join(available_ccs())}"
        )
    return factory(**kwargs)


def cc_kind(name: str) -> str:
    """Feedback family ('drop' / 'ecn' / 'delay') for a CC name."""
    return make_cc(name).kind
