"""BBR-flavoured model-based congestion control, simplified.

BBR (Cardwell et al., 2016) builds an explicit model of the path — the
bottleneck bandwidth (windowed-max delivery rate) and the round-trip
propagation time (windowed-min RTT) — and sets its window to a small
multiple of the estimated BDP instead of reacting to loss or marks.

This implementation keeps the model side (max-bandwidth and min-RTT
filters, BDP-sized cwnd with a probing gain cycle) and omits BBR's
ProbeRTT/pacing-rate machinery; it is the "arrival rate + delay" CC the
paper's Section 7 says AQ can accommodate, since both quantities remain
observable per entity under AQ.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple

from .base import AckContext, CongestionControl, DELAY_BASED

#: Gain cycle approximating BBR's ProbeBW phases.
GAIN_CYCLE = (1.25, 0.75, 1.0, 1.0, 1.0, 1.0)


class Bbr(CongestionControl):
    """Model-based CC: cwnd ~= gain * estimated BDP."""

    # BBR consumes delay (RTT) and delivery-rate samples; classified with
    # the delay family for AQ feedback purposes.
    kind = DELAY_BASED

    #: Length of the max-bandwidth filter window, in RTT-ish samples.
    BW_WINDOW = 32
    #: Steady cwnd gain over the estimated BDP.
    CWND_GAIN = 2.0

    def __init__(self, mss_bytes: int = 1460) -> None:
        super().__init__()
        self.mss_bytes = mss_bytes
        self._bw_samples: Deque[Tuple[int, float]] = deque(maxlen=self.BW_WINDOW)
        self._min_rtt = float("inf")
        self._cycle_index = 0
        self._last_cycle_advance = 0.0
        self.ssthresh = float("inf")

    @property
    def bottleneck_bw_bps(self) -> float:
        """Current windowed-max delivery-rate estimate."""
        if not self._bw_samples:
            return 0.0
        return max(bw for _, bw in self._bw_samples)

    @property
    def min_rtt(self) -> float:
        return self._min_rtt

    def on_ack(self, ctx: AckContext) -> None:
        if ctx.rtt_sample > 0:
            if ctx.rtt_sample < self._min_rtt:
                self._min_rtt = ctx.rtt_sample
            # Delivery-rate sample: the data in flight over the RTT it took
            # (per-packet ACKs make acked_bytes/rtt a gross underestimate).
            flight_bytes = (ctx.flightsize_packets + ctx.acked_packets) * self.mss_bytes
            bw = flight_bytes * 8.0 / ctx.rtt_sample
            self._bw_samples.append((ctx.acked_packets, bw))
        if self._min_rtt == float("inf") or not self._bw_samples:
            self.cwnd += ctx.acked_packets  # startup: grow like slow start
            return
        # Advance the gain cycle roughly once per min RTT.
        if ctx.now - self._last_cycle_advance >= self._min_rtt:
            self._cycle_index = (self._cycle_index + 1) % len(GAIN_CYCLE)
            self._last_cycle_advance = ctx.now
        gain = GAIN_CYCLE[self._cycle_index]
        bdp_packets = (
            self.bottleneck_bw_bps * self._min_rtt / 8.0 / self.mss_bytes
        )
        target = max(self.CWND_GAIN * gain * bdp_packets, 4.0)
        # Move toward the target smoothly to avoid line-rate bursts.
        if target > self.cwnd:
            self.cwnd = min(target, self.cwnd + ctx.acked_packets)
        else:
            self.cwnd = target
        self._clamp()

    def on_packet_loss(self, now: float) -> None:
        # BBR ignores isolated losses; the model drives the window.
        pass

    def on_rto(self, now: float) -> None:
        self.cwnd = max(4.0, self.cwnd * 0.5)
        self._bw_samples.clear()
