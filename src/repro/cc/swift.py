"""Swift (Kumar et al., SIGCOMM 2020), simplified: delay-targeted AIMD.

Swift compares a delay sample against a target. Below target it adds
``AI`` packets per RTT; above target it multiplicatively decreases
proportionally to the excess, clamped by ``MAX_MDF``, at most once per RTT.
The window may drop below one packet, in which case the transport paces
(one packet per ``rtt / cwnd``).

Delay source:

* under a physical queue the sample is measured RTT minus the observed
  base RTT (fabric queuing delay),
* under AQ the sample is the entity's own *virtual queuing delay*
  accumulated hop by hop and echoed on ACKs (paper Section 3.3.2) —
  pass ``use_virtual_delay=True``.
"""

from __future__ import annotations

from .base import AckContext, CongestionControl, DELAY_BASED, MIN_CWND


class Swift(CongestionControl):
    """Delay-based congestion control."""

    kind = DELAY_BASED

    #: Additive increase in packets per RTT.
    AI = 1.0
    #: Multiplicative-decrease aggressiveness.
    BETA = 0.8
    #: Maximum fractional decrease applied per congestion event.
    MAX_MDF = 0.5

    def __init__(self, target_delay: float = 50e-6, use_virtual_delay: bool = False):
        super().__init__()
        if target_delay <= 0:
            raise ValueError(f"target delay must be positive, got {target_delay}")
        self.target_delay = target_delay
        self.use_virtual_delay = use_virtual_delay
        self._last_decrease = -1.0
        self.ssthresh = float("inf")  # Swift has no slow-start phase here

    def _delay_sample(self, ctx: AckContext) -> float:
        if self.use_virtual_delay:
            return ctx.virtual_delay
        if ctx.rtt_sample <= 0 or ctx.base_rtt <= 0:
            return -1.0
        return max(0.0, ctx.rtt_sample - ctx.base_rtt)

    def on_ack(self, ctx: AckContext) -> None:
        delay = self._delay_sample(ctx)
        if delay < 0:
            return
        if delay <= self.target_delay:
            if self.cwnd >= 1.0:
                self.cwnd += self.AI * ctx.acked_packets / self.cwnd
            else:
                self.cwnd += self.AI * ctx.acked_packets * self.cwnd
        else:
            rtt = ctx.rtt_sample if ctx.rtt_sample > 0 else ctx.base_rtt
            if ctx.now - self._last_decrease >= rtt:
                excess = (delay - self.target_delay) / delay
                factor = max(1.0 - self.BETA * excess, 1.0 - self.MAX_MDF)
                self.cwnd *= factor
                self._last_decrease = ctx.now
        self._clamp()

    def on_packet_loss(self, now: float) -> None:
        self.cwnd *= 1.0 - self.MAX_MDF
        self._clamp()

    def on_rto(self, now: float) -> None:
        self.cwnd = max(MIN_CWND, self.cwnd * (1.0 - self.MAX_MDF))
