"""Congestion-control interface.

A CC module owns a congestion window (``cwnd``, in packets, possibly
fractional) and reacts to transport events. The transport passes an
:class:`AckContext` on every cumulative ACK so each algorithm can pick the
signal it cares about: loss events (drop-based), the ECN echo (ECN-based),
or the delay sample (delay-based). Under AQ, the delay sample is the
*virtual queuing delay* echoed back by the receiver (Section 3.3.2);
under PQ it is measured RTT inflation over the observed base RTT.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

#: CC families, as the paper classifies feedback types (Section 3.3.2).
DROP_BASED = "drop"
ECN_BASED = "ecn"
DELAY_BASED = "delay"

#: Initial congestion window in packets (RFC 6928 flavor).
INITIAL_CWND = 10.0

#: Floor for the congestion window; Swift-style CCs may pace below one
#: packet per RTT, so the floor is well under 1.
MIN_CWND = 0.0625


@dataclass
class AckContext:
    """Everything a CC may want to know about one cumulative ACK."""

    now: float
    acked_packets: int
    acked_bytes: int
    rtt_sample: float  # <= 0 when no valid sample (Karn's rule)
    base_rtt: float  # min RTT observed so far (propagation estimate)
    ece: bool  # ECN echo on this ACK
    virtual_delay: float  # AQ-accumulated virtual queuing delay echo
    snd_una: int  # cumulative ack point after this ACK
    flightsize_packets: int


class CongestionControl(ABC):
    """Base class for all congestion-control algorithms."""

    #: One of DROP_BASED / ECN_BASED / DELAY_BASED; the AQ controller uses
    #: this to choose the feedback policy for the entity's AQ.
    kind: str = DROP_BASED

    #: Whether the transport should set the ECT codepoint on data packets.
    ecn_capable: bool = False

    def __init__(self) -> None:
        self.cwnd: float = INITIAL_CWND
        self.ssthresh: float = float("inf")

    # -- events ------------------------------------------------------------------

    @abstractmethod
    def on_ack(self, ctx: AckContext) -> None:
        """New data was cumulatively acknowledged."""

    def on_packet_loss(self, now: float) -> None:
        """A loss event (triple-dup-ACK fast retransmit), once per window."""

    def on_rto(self, now: float) -> None:
        """Retransmission timeout: collapse to one packet by default."""
        self.ssthresh = max(self.cwnd / 2.0, 2.0)
        self.cwnd = 1.0

    # -- helpers -------------------------------------------------------------------

    def _clamp(self) -> None:
        if self.cwnd < MIN_CWND:
            self.cwnd = MIN_CWND

    @property
    def name(self) -> str:
        return type(self).__name__.lower()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} cwnd={self.cwnd:.2f}>"


class AimdCongestionControl(CongestionControl):
    """Shared slow-start / congestion-avoidance growth used by the Reno
    family (NewReno, DCTCP's growth side, Illinois' alpha-scaled growth)."""

    def _grow(self, acked_packets: int, alpha: float = 1.0) -> None:
        """Grow ``cwnd`` for ``acked_packets`` newly acked packets."""
        for _ in range(acked_packets):
            if self.cwnd < self.ssthresh:
                self.cwnd += 1.0  # slow start
            else:
                self.cwnd += alpha / self.cwnd  # congestion avoidance
        self._clamp()
