"""DCTCP (Alizadeh et al., SIGCOMM 2010): ECN-fraction-proportional back-off.

The receiver echoes the CE mark of every data packet; the sender estimates
the marked fraction ``alpha`` over windows of one RTT and reduces
``cwnd *= 1 - alpha/2`` at most once per window when marks were seen.
Growth follows Reno. Under AQ, the marks come from the entity's own A-Gap
crossing its virtual ECN threshold instead of the shared queue length.
"""

from __future__ import annotations

from .base import AckContext, AimdCongestionControl, ECN_BASED


class Dctcp(AimdCongestionControl):
    """ECN-based congestion control."""

    kind = ECN_BASED
    ecn_capable = True

    #: EWMA gain for the marked-fraction estimator (paper's g).
    G = 1.0 / 16.0

    def __init__(self) -> None:
        super().__init__()
        self.alpha = 1.0  # start conservative, as the Linux implementation does
        self._acked = 0
        self._marked = 0
        self._window_end = 0  # seq; one observation window per RTT of data
        self._reduced_this_window = False

    def on_ack(self, ctx: AckContext) -> None:
        self._acked += ctx.acked_packets
        if ctx.ece:
            self._marked += ctx.acked_packets
        if ctx.snd_una >= self._window_end:
            # One RTT of data acknowledged: fold the observation into alpha.
            if self._acked > 0:
                fraction = self._marked / self._acked
                self.alpha += self.G * (fraction - self.alpha)
            self._acked = 0
            self._marked = 0
            self._reduced_this_window = False
            self._window_end = ctx.snd_una + max(
                int(self.cwnd) * ctx.acked_bytes // max(ctx.acked_packets, 1), 1
            )
        if ctx.ece and not self._reduced_this_window:
            self.cwnd *= 1.0 - self.alpha / 2.0
            if self.cwnd < 2.0:
                self.cwnd = 2.0
            self.ssthresh = self.cwnd
            self._reduced_this_window = True
        else:
            self._grow(ctx.acked_packets)

    def on_packet_loss(self, now: float) -> None:
        # DCTCP falls back to Reno behaviour on real loss.
        self.ssthresh = max(self.cwnd / 2.0, 2.0)
        self.cwnd = self.ssthresh
        self._clamp()
