"""TCP CUBIC (RFC 8312): loss-based, cubic window growth.

Implements the cubic growth function with fast convergence and the
TCP-friendly (Reno emulation) region. Timing uses the simulation clock
passed through :class:`~repro.cc.base.AckContext`.
"""

from __future__ import annotations

from .base import AckContext, CongestionControl, DROP_BASED, INITIAL_CWND


class Cubic(CongestionControl):
    """CUBIC congestion control.

    Parameters follow RFC 8312: ``C = 0.4``, ``beta = 0.7``.
    """

    kind = DROP_BASED

    C = 0.4
    BETA = 0.7

    def __init__(self) -> None:
        super().__init__()
        self._w_max = 0.0
        self._epoch_start = -1.0
        self._k = 0.0
        self._origin_point = 0.0
        self._tcp_cwnd = 0.0  # Reno-friendly estimate

    def _reset_epoch(self, now: float) -> None:
        self._epoch_start = now
        if self.cwnd < self._w_max:
            self._k = ((self._w_max - self.cwnd) / self.C) ** (1.0 / 3.0)
            self._origin_point = self._w_max
        else:
            self._k = 0.0
            self._origin_point = self.cwnd
        self._tcp_cwnd = self.cwnd

    def on_ack(self, ctx: AckContext) -> None:
        if self.cwnd < self.ssthresh:
            self.cwnd += ctx.acked_packets
            return
        if self._epoch_start < 0:
            self._reset_epoch(ctx.now)
        rtt = ctx.rtt_sample if ctx.rtt_sample > 0 else ctx.base_rtt
        t = ctx.now - self._epoch_start + rtt
        target = self._origin_point + self.C * (t - self._k) ** 3
        # Reno-friendly region: grow at least as fast as classic AIMD.
        self._tcp_cwnd += (
            3.0 * (1.0 - self.BETA) / (1.0 + self.BETA) * ctx.acked_packets / self.cwnd
        )
        target = max(target, self._tcp_cwnd)
        if target > self.cwnd:
            # Spread the gap over roughly one RTT of ACKs.
            self.cwnd += (target - self.cwnd) / self.cwnd * ctx.acked_packets
        else:
            self.cwnd += 0.01 * ctx.acked_packets / self.cwnd  # slow probing
        self._clamp()

    def on_packet_loss(self, now: float) -> None:
        self._epoch_start = -1.0
        if self.cwnd < self._w_max:
            # Fast convergence: release bandwidth faster on consecutive losses.
            self._w_max = self.cwnd * (1.0 + self.BETA) / 2.0
        else:
            self._w_max = self.cwnd
        self.cwnd = max(self.cwnd * self.BETA, 2.0)
        self.ssthresh = self.cwnd
        self._clamp()

    def on_rto(self, now: float) -> None:
        super().on_rto(now)
        self._epoch_start = -1.0
        self._w_max = INITIAL_CWND
