"""TCP Illinois (Liu, Başar, Srikant 2006): loss-driven with delay-adapted
AIMD coefficients.

The additive-increase ``alpha`` shrinks and the multiplicative-decrease
``beta`` grows as average queueing delay rises, concave between the
configured extremes. Loss remains the primary back-off trigger, which is
why the paper classifies Illinois as drop-based.
"""

from __future__ import annotations

from .base import AckContext, CongestionControl, DROP_BASED


class Illinois(CongestionControl):
    """Loss-based CC with delay-modulated AIMD parameters."""

    kind = DROP_BASED

    ALPHA_MAX = 10.0
    ALPHA_MIN = 0.3
    BETA_MIN = 0.125
    BETA_MAX = 0.5
    #: Fraction of the max observed queueing delay below which alpha
    #: saturates at ALPHA_MAX (d_1 in the paper).
    LOW_DELAY_FRACTION = 0.01

    def __init__(self) -> None:
        super().__init__()
        self._alpha = 1.0
        self._beta = self.BETA_MAX
        self._max_queue_delay = 0.0
        self._avg_queue_delay = 0.0
        self._ewma_gain = 0.1

    def _update_parameters(self, queue_delay: float) -> None:
        self._avg_queue_delay += self._ewma_gain * (
            queue_delay - self._avg_queue_delay
        )
        if queue_delay > self._max_queue_delay:
            self._max_queue_delay = queue_delay
        dm = self._max_queue_delay
        if dm <= 0:
            self._alpha, self._beta = self.ALPHA_MAX, self.BETA_MIN
            return
        da = self._avg_queue_delay
        d1 = self.LOW_DELAY_FRACTION * dm
        if da <= d1:
            self._alpha = self.ALPHA_MAX
        else:
            # Concave decrease of alpha: kappa1 / (kappa2 + da).
            kappa1 = (dm - d1) * self.ALPHA_MIN * self.ALPHA_MAX / (
                self.ALPHA_MAX - self.ALPHA_MIN
            )
            kappa2 = kappa1 / self.ALPHA_MAX - d1
            self._alpha = max(self.ALPHA_MIN, kappa1 / (kappa2 + da))
        # Linear increase of beta between d2 and d3 (0.1 dm .. 0.8 dm).
        d2, d3 = 0.1 * dm, 0.8 * dm
        if da <= d2:
            self._beta = self.BETA_MIN
        elif da >= d3:
            self._beta = self.BETA_MAX
        else:
            kappa3 = (self.BETA_MAX - self.BETA_MIN) / (d3 - d2)
            self._beta = self.BETA_MIN + kappa3 * (da - d2)

    def on_ack(self, ctx: AckContext) -> None:
        if ctx.rtt_sample > 0 and ctx.base_rtt > 0:
            self._update_parameters(max(0.0, ctx.rtt_sample - ctx.base_rtt))
        for _ in range(ctx.acked_packets):
            if self.cwnd < self.ssthresh:
                self.cwnd += 1.0
            else:
                self.cwnd += self._alpha / self.cwnd
        self._clamp()

    def on_packet_loss(self, now: float) -> None:
        self.ssthresh = max(self.cwnd * (1.0 - self._beta), 2.0)
        self.cwnd = self.ssthresh
        self._clamp()

    @property
    def alpha(self) -> float:
        return self._alpha

    @property
    def beta(self) -> float:
        return self._beta
