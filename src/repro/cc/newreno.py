"""TCP NewReno (RFC 6582): classic AIMD, loss-driven.

Slow start doubles per RTT, congestion avoidance adds one packet per RTT,
fast retransmit halves the window.
"""

from __future__ import annotations

from .base import AckContext, AimdCongestionControl, DROP_BASED


class NewReno(AimdCongestionControl):
    """Loss-based AIMD congestion control."""

    kind = DROP_BASED

    def on_ack(self, ctx: AckContext) -> None:
        self._grow(ctx.acked_packets)

    def on_packet_loss(self, now: float) -> None:
        self.ssthresh = max(self.cwnd / 2.0, 2.0)
        self.cwnd = self.ssthresh
        self._clamp()
