"""TIMELY (Mittal et al., SIGCOMM 2015), simplified: RTT-gradient CC.

TIMELY adjusts the sending window based on the *gradient* of the RTT
signal, normalized by a minimum RTT: rising delay means queues are
building somewhere, falling delay means they are draining. Between low
and high delay thresholds, the gradient drives additive increase or
gradient-proportional multiplicative decrease; beyond the thresholds
hard increase/decrease apply.

The paper lists TIMELY with Swift among the delay-based CCs AQ supports:
under AQ, the delay sample is the entity's own accumulated virtual
queuing delay (``use_virtual_delay=True``), so TIMELY reacts only to its
own allocation discrepancy.
"""

from __future__ import annotations

from .base import AckContext, CongestionControl, DELAY_BASED


class Timely(CongestionControl):
    """Delay-gradient congestion control."""

    kind = DELAY_BASED

    #: Additive increase per RTT, packets.
    AI = 1.0
    #: Multiplicative decrease factor for the gradient regime.
    BETA = 0.8
    #: EWMA gain for the RTT-difference filter.
    ALPHA = 0.3

    def __init__(
        self,
        t_low: float = 50e-6,
        t_high: float = 500e-6,
        min_rtt: float = 20e-6,
        use_virtual_delay: bool = False,
    ) -> None:
        super().__init__()
        if not 0 < t_low < t_high:
            raise ValueError(
                f"thresholds must satisfy 0 < t_low < t_high, got {t_low}, {t_high}"
            )
        self.t_low = t_low
        self.t_high = t_high
        self.min_rtt = min_rtt
        self.use_virtual_delay = use_virtual_delay
        self._prev_delay = -1.0
        self._gradient = 0.0
        self.ssthresh = float("inf")

    def _delay_sample(self, ctx: AckContext) -> float:
        if self.use_virtual_delay:
            return ctx.virtual_delay
        if ctx.rtt_sample <= 0 or ctx.base_rtt <= 0:
            return -1.0
        return max(0.0, ctx.rtt_sample - ctx.base_rtt)

    def on_ack(self, ctx: AckContext) -> None:
        delay = self._delay_sample(ctx)
        if delay < 0:
            return
        if self._prev_delay < 0:
            self._prev_delay = delay
            return
        diff = delay - self._prev_delay
        self._prev_delay = delay
        self._gradient += self.ALPHA * (diff / self.min_rtt - self._gradient)

        if delay < self.t_low:
            self.cwnd += self.AI * ctx.acked_packets / max(self.cwnd, 1.0)
        elif delay > self.t_high:
            self.cwnd *= 1.0 - self.BETA * (1.0 - self.t_high / delay)
        elif self._gradient <= 0:
            self.cwnd += self.AI * ctx.acked_packets / max(self.cwnd, 1.0)
        else:
            self.cwnd *= 1.0 - self.BETA * min(self._gradient, 1.0) * 0.1
        self._clamp()

    def on_packet_loss(self, now: float) -> None:
        self.cwnd *= 0.5
        self._clamp()
