"""Deterministic discrete-event simulation engine.

The engine is a classic calendar built on :mod:`heapq`. Three properties
matter for reproducing the paper:

* **Determinism** — ties in event time are broken by insertion order, so the
  same scenario with the same seeds produces the same packet trace.
* **Cancellation** — TCP retransmission timers are cancelled far more often
  than they fire; cancelled events are tombstoned and skipped on pop, and
  the calendar is compacted in place whenever tombstones outnumber live
  events (see ``docs/PERFORMANCE.md``).
* **Speed** — the hot path (schedule/pop) avoids attribute lookups and
  allocations where practical; events are small ``__slots__`` objects, and
  fire-and-forget events (:meth:`Simulator.schedule_fire`) are recycled
  through a free list so steady-state packet forwarding allocates nothing.

The simulator also carries the run's :class:`~repro.obs.Telemetry`: the
profiler (when attached) swaps the run loop for an instrumented variant,
and components reach the trace bus / metrics registry via
``sim.telemetry``.

**Execution modes.** The engine itself is mode-agnostic — it only ever
pops the next event. Two subsystems restructure *what gets scheduled*
on top of it, and they compose differently:

* the **fluid fast path** (:mod:`repro.sim.fluid`) pauses per-packet
  machinery on stable backlogged links and jumps the clock with
  :meth:`Simulator.advance_to` — one simulator, fewer events;
* **sharding** (:mod:`repro.sim.shard`) runs one simulator per
  partition in lockstep epochs of :meth:`Simulator.run` bounded by the
  conservative lookahead, with cross-partition arrivals re-entering via
  :meth:`Simulator.schedule_at` at barriers.

Telemetry composes with both. Fluid and sharding are mutually
exclusive: fluid's analytic epochs advance links past barrier times,
which would violate the capture-before-barrier invariant sharding's
determinism contract rests on (see ``docs/SCALING.md`` §7).
"""

from __future__ import annotations

import heapq
import time as _time
from typing import Any, Callable, Optional

from ..errors import SimulationError


class Event:
    """A scheduled callback; returned by :meth:`Simulator.schedule`.

    Instances are handles: the only public operations are :meth:`cancel`
    and inspecting :attr:`time` / :attr:`cancelled`. Events created through
    :meth:`Simulator.schedule_fire` are *pooled*: the simulator recycles
    them after they fire, which is safe precisely because no handle to
    them ever escapes.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "poolable", "_sim")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[..., Any],
        args: tuple,
        sim: "Simulator",
    ):
        self.time = time
        self.seq = seq
        self.fn: Optional[Callable[..., Any]] = fn
        self.args = args
        self.cancelled = False
        self.poolable = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent this event from firing. Idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        # ``fn`` is None once the run loop has consumed the event, so the
        # live-event counter only moves for genuinely pending events.
        if self.fn is not None:
            # Drop references early so cancelled timers do not pin packets
            # alive while their tombstones wait in the heap.
            self.fn = None
            self.args = ()
            self._sim._note_cancel()

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.9f} seq={self.seq} {state}>"


class Simulator:
    """The event loop that every simulated component shares.

    Typical use::

        sim = Simulator()
        sim.schedule(0.001, my_callback, arg1, arg2)
        sim.run(until=1.0)

    ``telemetry`` defaults to the ambient instance installed by
    :meth:`repro.obs.Telemetry.activate` (so a CLI flag can instrument
    scenarios that build their own simulators), falling back to a fresh
    disabled instance.
    """

    #: Compaction does not kick in below this calendar size: rebuilding a
    #: tiny heap costs more than skipping its tombstones ever will.
    COMPACT_MIN_CALENDAR = 64
    #: Upper bound on pooled Event objects kept for reuse.
    FREE_LIST_MAX = 4096

    def __init__(self, telemetry=None) -> None:
        self._heap: list[Event] = []
        self._now = 0.0
        self._seq = 0
        self._running = False
        self._events_processed = 0
        self._live = 0
        self._free: list[Event] = []
        self.compactions = 0
        #: Fault-event observers (see :meth:`add_fault_listener`). Kept off
        #: the run-loop hot path entirely: the list is only walked when a
        #: fault injector calls :meth:`notify_fault`.
        self._fault_listeners: list[Callable[[Any], None]] = []
        if telemetry is None:
            from ..obs.telemetry import Telemetry, get_active_telemetry

            telemetry = get_active_telemetry()
            if telemetry is None:
                telemetry = Telemetry()
        self.telemetry = telemetry

    # -- clock ---------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (for performance reporting)."""
        return self._events_processed

    # -- scheduling ------------------------------------------------------------

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s in the past")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at an absolute simulation time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        self._seq += 1
        event = Event(time, self._seq, fn, args, self)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def schedule_fire(self, delay: float, fn: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget :meth:`schedule`: no handle is returned and the
        event can never be cancelled, which lets the simulator recycle the
        Event object through a free list instead of allocating. Use this
        for hot-path events whose handle would be discarded anyway
        (packet deliveries, serialization completions)."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s in the past")
        self.schedule_fire_at(self._now + delay, fn, *args)

    def schedule_fire_at(self, time: float, fn: Callable[..., Any], *args: Any) -> None:
        """Absolute-time variant of :meth:`schedule_fire`."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        self._seq += 1
        free = self._free
        if free:
            event = free.pop()
            event.time = time
            event.seq = self._seq
            event.fn = fn
            event.args = args
        else:
            event = Event(time, self._seq, fn, args, self)
            event.poolable = True
        heapq.heappush(self._heap, event)
        self._live += 1

    # -- fault events ------------------------------------------------------------

    def add_fault_listener(self, listener: Callable[[Any], None]) -> None:
        """Register ``listener(fault_event)`` to run whenever an injected
        fault fires in this simulation (see :mod:`repro.faults`). The
        engine itself never originates faults; this is the rendezvous
        point between the injector and components (recovery managers,
        meters) that need to observe topology state changes without the
        injector knowing about them."""
        self._fault_listeners.append(listener)

    def notify_fault(self, fault_event: Any) -> None:
        """Deliver ``fault_event`` to every registered listener, in
        registration order. Called by the fault injector at the moment a
        scheduled fault is applied."""
        for listener in self._fault_listeners:
            listener(fault_event)

    # -- execution ---------------------------------------------------------------

    def _prune_cancelled(self) -> None:
        """Pop tombstones off the top of the heap until a live event (or
        nothing) is exposed. Shared by the run loop and :meth:`peek_time`."""
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)

    def _note_cancel(self) -> None:
        """Bookkeeping for one cancellation; compacts the calendar when
        tombstones outnumber live events (>50% of a non-trivial heap)."""
        self._live -= 1
        heap = self._heap
        size = len(heap)
        if size >= self.COMPACT_MIN_CALENDAR and (size - self._live) * 2 > size:
            self._compact()

    def _compact(self) -> None:
        """Rebuild the calendar without its tombstones.

        Mutates the heap list *in place* so the run loop's local alias
        stays valid, and re-heapifies; pop order is unaffected because
        ordering is total on ``(time, seq)``."""
        heap = self._heap
        heap[:] = [event for event in heap if not event.cancelled]
        heapq.heapify(heap)
        self.compactions += 1

    def calendar_size(self) -> int:
        """Number of heap slots in use, tombstones included (for tests
        and the hot-path benchmarks; compare with :meth:`pending_events`)."""
        return len(self._heap)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Process events until the calendar drains, ``until`` is reached,
        or ``max_events`` have executed.

        Returns the number of events processed by this call. The clock is
        advanced to ``until`` when provided and the calendar drained (or
        only holds later events), so periodic samplers observe a consistent
        end time — but **not** when the ``max_events`` cap stopped the run
        early: then the clock stays at the last processed event so the
        remaining work can resume where it left off.
        """
        if self._running:
            raise SimulationError("Simulator.run is not reentrant")
        self._running = True
        profiler = self.telemetry.profiler if self.telemetry is not None else None
        heap = self._heap
        free = self._free
        free_max = self.FREE_LIST_MAX
        processed = 0
        hit_cap = False
        try:
            if profiler is None:
                # Fast path: identical to the pre-telemetry loop.
                while heap:
                    event = heap[0]
                    if event.cancelled:
                        self._prune_cancelled()
                        continue
                    if until is not None and event.time > until:
                        break
                    heapq.heappop(heap)
                    self._live -= 1
                    self._now = event.time
                    fn, args = event.fn, event.args
                    event.fn, event.args = None, ()
                    assert fn is not None
                    fn(*args)
                    if event.poolable and len(free) < free_max:
                        free.append(event)
                    processed += 1
                    self._events_processed += 1
                    if max_events is not None and processed >= max_events:
                        hit_cap = True
                        break
            else:
                processed, hit_cap = self._run_profiled(until, max_events, profiler)
        finally:
            self._running = False
        if until is not None and not hit_cap and self._now < until:
            self._now = until
        return processed

    def _run_profiled(
        self,
        until: Optional[float],
        max_events: Optional[int],
        profiler,
    ) -> "tuple[int, bool]":
        """Run-loop variant that times every callback for the profiler.
        Returns ``(processed, hit_cap)``."""
        heap = self._heap
        free = self._free
        free_max = self.FREE_LIST_MAX
        perf = _time.perf_counter
        site_name = profiler.site_name
        processed = 0
        hit_cap = False
        start_sim = self._now
        run_start = perf()
        try:
            while heap:
                event = heap[0]
                if event.cancelled:
                    self._prune_cancelled()
                    continue
                if until is not None and event.time > until:
                    break
                profiler.note_heap_depth(len(heap))
                heapq.heappop(heap)
                self._live -= 1
                self._now = event.time
                fn, args = event.fn, event.args
                event.fn, event.args = None, ()
                assert fn is not None
                site = site_name(fn)
                t0 = perf()
                fn(*args)
                profiler.record_callback(site, perf() - t0)
                if event.poolable and len(free) < free_max:
                    free.append(event)
                processed += 1
                self._events_processed += 1
                if max_events is not None and processed >= max_events:
                    hit_cap = True
                    break
        finally:
            if hit_cap or until is None or until <= self._now:
                end_sim = self._now
            else:
                end_sim = until
            profiler.note_run(processed, perf() - run_start, end_sim - start_sim)
        return processed, hit_cap

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` if the calendar is empty."""
        self._prune_cancelled()
        heap = self._heap
        return heap[0].time if heap else None

    def advance_to(self, time: float) -> None:
        """Jump the clock straight to ``time`` without processing events.

        This is the fluid fast path's epoch skip: the caller has advanced
        the world analytically and only needs the clock to agree. It is an
        error to jump backwards, to jump past a pending event (that event
        would then fire in the past), or to call this from inside a
        callback (the run loop owns the clock while it is running).
        """
        if self._running:
            raise SimulationError("advance_to cannot be called from inside run()")
        if time < self._now:
            raise SimulationError(
                f"advance_to would move the clock backwards ({time} < {self._now})"
            )
        nxt = self.peek_time()
        if nxt is not None and nxt < time:
            raise SimulationError(
                f"advance_to({time}) would skip a pending event at {nxt}"
            )
        self._now = time

    def pending_events(self) -> int:
        """Number of not-yet-cancelled events in the calendar. O(1): a live
        counter is maintained on schedule/cancel/pop."""
        return self._live


class PeriodicTask:
    """Re-arms ``fn()`` every ``interval`` seconds until :meth:`stop`.

    Used by the weighted-mode allocator, ElasticSwitch's adjustment loop,
    and throughput samplers.
    """

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        fn: Callable[[], Any],
        start_delay: Optional[float] = None,
    ) -> None:
        if interval <= 0:
            raise SimulationError(f"interval must be positive, got {interval}")
        self._sim = sim
        self._interval = interval
        self._fn = fn
        self._stopped = False
        self._event: Optional[Event] = sim.schedule(
            interval if start_delay is None else start_delay, self._fire
        )

    def _fire(self) -> None:
        if self._stopped:
            return
        self._fn()
        if not self._stopped:
            self._event = self._sim.schedule(self._interval, self._fire)

    def stop(self) -> None:
        """Cancel the task; the callback will not fire again."""
        self._stopped = True
        if self._event is not None:
            self._event.cancel()
            self._event = None

    @property
    def interval(self) -> float:
        return self._interval
