"""Deterministic discrete-event simulation engine.

The engine is a classic calendar built on :mod:`heapq`. Three properties
matter for reproducing the paper:

* **Determinism** — ties in event time are broken by insertion order, so the
  same scenario with the same seeds produces the same packet trace.
* **Cancellation** — TCP retransmission timers are cancelled far more often
  than they fire; cancelled events are tombstoned and skipped on pop.
* **Speed** — the hot path (schedule/pop) avoids attribute lookups and
  allocations where practical; events are small ``__slots__`` objects.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from ..errors import SimulationError


class Event:
    """A scheduled callback; returned by :meth:`Simulator.schedule`.

    Instances are handles: the only public operations are :meth:`cancel`
    and inspecting :attr:`time` / :attr:`cancelled`.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn: Optional[Callable[..., Any]] = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent this event from firing. Idempotent."""
        self.cancelled = True
        # Drop references early so cancelled timers do not pin packets alive.
        self.fn = None
        self.args = ()

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.9f} seq={self.seq} {state}>"


class Simulator:
    """The event loop that every simulated component shares.

    Typical use::

        sim = Simulator()
        sim.schedule(0.001, my_callback, arg1, arg2)
        sim.run(until=1.0)
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._now = 0.0
        self._seq = 0
        self._running = False
        self._events_processed = 0

    # -- clock ---------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (for performance reporting)."""
        return self._events_processed

    # -- scheduling ------------------------------------------------------------

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s in the past")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at an absolute simulation time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        self._seq += 1
        event = Event(time, self._seq, fn, args)
        heapq.heappush(self._heap, event)
        return event

    # -- execution ---------------------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Process events until the calendar drains, ``until`` is reached,
        or ``max_events`` have executed.

        Returns the number of events processed by this call. The clock is
        advanced to ``until`` when provided, even if the calendar drained
        earlier, so periodic samplers observe a consistent end time.
        """
        if self._running:
            raise SimulationError("Simulator.run is not reentrant")
        self._running = True
        processed = 0
        heap = self._heap
        try:
            while heap:
                event = heap[0]
                if event.cancelled:
                    heapq.heappop(heap)
                    continue
                if until is not None and event.time > until:
                    break
                heapq.heappop(heap)
                self._now = event.time
                fn, args = event.fn, event.args
                event.fn, event.args = None, ()
                assert fn is not None
                fn(*args)
                processed += 1
                self._events_processed += 1
                if max_events is not None and processed >= max_events:
                    break
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return processed

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` if the calendar is empty."""
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
        return heap[0].time if heap else None

    def pending_events(self) -> int:
        """Number of not-yet-cancelled events in the calendar."""
        return sum(1 for event in self._heap if not event.cancelled)


class PeriodicTask:
    """Re-arms ``fn()`` every ``interval`` seconds until :meth:`stop`.

    Used by the weighted-mode allocator, ElasticSwitch's adjustment loop,
    and throughput samplers.
    """

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        fn: Callable[[], Any],
        start_delay: Optional[float] = None,
    ) -> None:
        if interval <= 0:
            raise SimulationError(f"interval must be positive, got {interval}")
        self._sim = sim
        self._interval = interval
        self._fn = fn
        self._stopped = False
        self._event: Optional[Event] = sim.schedule(
            interval if start_delay is None else start_delay, self._fire
        )

    def _fire(self) -> None:
        if self._stopped:
            return
        self._fn()
        if not self._stopped:
            self._event = self._sim.schedule(self._interval, self._fire)

    def stop(self) -> None:
        """Cancel the task; the callback will not fire again."""
        self._stopped = True
        if self._event is not None:
            self._event.cancel()
            self._event = None

    @property
    def interval(self) -> float:
        return self._interval
