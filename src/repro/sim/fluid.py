"""Hybrid fluid/packet simulation: analytic epochs for backlogged links.

The per-packet engine costs ~3 events per packet on a backlogged link
(BENCH_engine.json), which caps throughput around 10⁵ packets/sec. But a
*stable* backlogged period — constant-rate UDP senders, a fixed contending
flow set, no pending fault — is exactly the regime every component of this
simulator has a closed form for:

* the **A-Gap** recurrence of Theorem 3.2 degenerates to a clamped line,
  ``A(t) = max(0, A₀ + (λ − R/8)·t)`` (:func:`repro.core.agap.fluid_gap_after`);
* a **drop-tail FIFO** is a shared backlog with proportional-share drain;
* a **token bucket** is a three-phase piecewise-linear system
  (:meth:`repro.ratelimit.token_bucket.TokenBucketShaper.fluid_phase`).

:class:`FluidEngine` exploits this: it pauses the packet machinery (the
``LinkMode`` switch on :class:`~repro.net.link.Transmitter`), snapshots
queue/gap/bucket state, and advances whole *epochs* in closed form —
per-flow bytes, queue backlogs, A-Gap registers — jumping the clock with
:meth:`~repro.sim.engine.Simulator.advance_to`. Each epoch ends at the
earliest transition:

* **internal** regime changes (a queue fills or empties, an A-Gap
  saturates at its limit, a token bucket runs dry) just start the next
  epoch, still in fluid mode;
* **external** transitions — a calendar event (flow arrival, fault,
  controller tick), a flow finishing, or the run horizon — drop the link
  set back to packet mode with reconstructed queue state, and the engine
  re-engages once per-packet simulation has processed them.

Conservation is maintained *exactly*, in integers: every epoch emits
synthetic ``host_send`` / ``enqueue`` / ``dequeue`` / ``drop`` /
``deliver`` events whose sizes are integer byte counts chained stage to
stage, plus one ``fluid_epoch`` event per Augmented Queue carrying the
analytic end gap — so the conservation-law auditor closes its books over
fluid stretches with the same invariants it applies per packet. What the
fluid model intentionally coarsens is *timing within an epoch* (bytes are
attributed to the epoch end) and FIFO ordering across flows; per-flow
delivered bytes stay within a packet-scale tolerance of packet mode (see
docs/PERFORMANCE.md for the measured bounds).

**Composition.** Fluid mode composes with all telemetry (the synthetic
events above are the mechanism) and with fault plans (a pending fault
is an external transition that ends the epoch). It does **not** compose
with sharding (:mod:`repro.sim.shard`): a fluid epoch advances a link
analytically past the sharded run's barrier times, so a boundary link
could deliver bytes the neighbouring partition's epoch never saw —
breaking both the lookahead guarantee and bit-identical digests.
The two attack different axes (fluid collapses *time* on one core,
sharding spreads *space* across cores); ``share-fabric`` is therefore
packet-mode only, and ``--fluid`` stays a ``share``-scenario flag.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from ..cc.base import DROP_BASED
from ..core.agap import fluid_gap_after, fluid_gap_crossing
from ..core.aq import AugmentedQueue
from ..core.pipeline import EGRESS, INGRESS, AqPipeline
from ..errors import ReproError
from ..net.host import Host
from ..net.link import MODE_FLUID, MODE_PACKET
from ..net.packet import make_udp
from ..net.switch import Switch
from ..obs.events import (
    EV_DELIVER,
    EV_DEQUEUE,
    EV_DROP,
    EV_ENQUEUE,
    EV_FLUID_EPOCH,
    EV_HOST_SEND,
    EV_RATE_LIMIT,
)
from ..ratelimit.token_bucket import TokenBucketShaper
from ..transport.udp import UdpFlow
from ..units import MTU_BYTES, transmission_time

#: Below this many bytes a fluid backlog/gap counts as empty.
_EPS_BYTES = 1e-6
#: Relative slack when comparing an epoch end against a hard bound.
_EPS_TIME = 1e-12


class FluidIneligible(ReproError):
    """The network (or its current state) cannot be advanced in closed form."""


class _FlowState:
    """Per-flow bookkeeping: the sender/sink pair, its stage path, and the
    fractional-packet carry that keeps emission whole-packet exact."""

    __slots__ = ("flow", "sender", "sink", "src", "dst", "shaper_stage",
                 "stages", "carry", "resume_at")

    def __init__(self, flow: UdpFlow, src_host: Host, dst_host: Host) -> None:
        self.flow = flow
        self.sender = flow.sender
        self.sink = flow.sink
        self.src = src_host
        self.dst = dst_host
        self.shaper_stage: Optional[_ShaperStage] = None
        self.stages: List["_QueueStage | _AqStage"] = []
        self.carry = 0.0
        #: The per-packet send time the pause cancelled; restored verbatim
        #: when the engagement closes no epoch, so a fallback costs the
        #: sender nothing. Cleared once an epoch re-models the sender.
        self.resume_at: Optional[float] = None


class _ShaperStage:
    """Closed-form token bucket for exactly one flow (PRL/DRL hosts)."""

    __slots__ = ("shaper", "flow_id", "tokens", "backlog", "carry",
                 "_first_out_Bps", "_boundary")

    def __init__(self, shaper: TokenBucketShaper, flow_id: int) -> None:
        self.shaper = shaper
        self.flow_id = flow_id
        self.tokens = 0.0
        self.backlog = 0.0
        self.carry = 0.0
        self._first_out_Bps = 0.0
        self._boundary: Optional[float] = None

    def capture(self) -> None:
        self.tokens, self.backlog = self.shaper.fluid_pause()
        self.carry = 0.0

    def rates(self, in_Bps: float) -> float:
        out, _drop, _ts, _bs, boundary = self.shaper.fluid_phase(
            self.tokens, self.backlog, in_Bps
        )
        self._first_out_Bps = out
        self._boundary = boundary
        return out

    def breakpoint(self) -> Optional[float]:
        return self._boundary

    def apply(self, dt: float, t_end: float, in_bytes: int,
              packet_size: int, trace) -> int:
        """Advance the bucket piecewise over ``dt``; returns the bytes that
        left the shaper (whole packets, via this stage's carry)."""
        lam = in_bytes / dt if dt > 0 else 0.0
        remaining = dt
        out_f = 0.0
        drop_f = 0.0
        for _ in range(16):
            if remaining <= 0.0:
                break
            out, drop, t_slope, b_slope, boundary = self.shaper.fluid_phase(
                self.tokens, self.backlog, lam
            )
            step = remaining if boundary is None else min(remaining, boundary)
            if step <= 0.0:
                step = remaining
            out_f += out * step
            drop_f += drop * step
            self.tokens = min(
                float(self.shaper.bucket_bytes),
                max(0.0, self.tokens + t_slope * step),
            )
            self.backlog = min(
                float(self.shaper.backlog_limit_bytes),
                max(0.0, self.backlog + b_slope * step),
            )
            remaining -= step
        raw = out_f + self.carry
        n = int(raw // packet_size)
        out_int = n * packet_size
        self.carry = raw - out_int
        drop_int = max(0, min(in_bytes - out_int, int(round(drop_f))))
        drop_pkts = drop_int // packet_size if packet_size else 0
        shaped = max(0, in_bytes - out_int - drop_int) // packet_size
        if drop_int > 0 and trace is not None:
            # Pre-injection discard: no aq_id, so the auditor leaves it out
            # of the in-flight ledger (same shape as Shaper.submit's event).
            trace.emit_fields(
                EV_RATE_LIMIT, t_end, node="shaper", flow_id=self.flow_id,
                size=drop_int, value=self.backlog, reason="shaper",
            )
        self.shaper.fluid_account(in_bytes, shaped, drop_pkts)
        return out_int

    def restore(self, fs: _FlowState, now: float, packet_size: int) -> None:
        """Rebuild the packet-mode deque from the fluid backlog."""
        pkts = []
        backlog = int(round(self.backlog))
        n, rem = divmod(backlog, packet_size)
        for _ in range(n):
            pkts.append(self._mk(fs, packet_size, now))
        if rem > 0:
            pkts.append(self._mk(fs, rem, now))
        self.shaper.fluid_resume(self.tokens, pkts, sum(p.size for p in pkts))

    def _mk(self, fs: _FlowState, size: int, now: float):
        packet = make_udp(fs.src.name, fs.sender.dst, self.flow_id, size)
        packet.aq_ingress_id = fs.sender.aq_ingress_id
        packet.aq_egress_id = fs.sender.aq_egress_id
        packet.sent_time = now
        return packet


class _AqStage:
    """One ingress Augmented Queue shared by an entity's flows: the A-Gap
    advances along the Theorem 3.2 closed form, limit drops in aggregate."""

    __slots__ = ("aq", "flow_ids", "gap", "sat_tol", "_in_Bps", "_sat")

    def __init__(self, aq: AugmentedQueue) -> None:
        self.aq = aq
        self.flow_ids: List[int] = []
        self.gap = 0.0
        # Per-packet admission stops once gap + size > limit, so the
        # sustained-state gap hovers within one packet of the limit.
        # Treating that whole band as saturated matches the packet-mode
        # fixed point and keeps quantized end gaps from re-triggering
        # micro crossing breakpoints every epoch.
        self.sat_tol = float(MTU_BYTES)
        self._in_Bps = 0.0
        self._sat = False

    def capture(self, now: float) -> None:
        self.gap = self.aq.tracker.peek(now)
        self.aq.fluid_announce_rate(now)

    def rates(self, in_Bps: Dict[int, float]) -> None:
        lam = sum(in_Bps.get(fid, 0.0) for fid in self.flow_ids)
        drain = self.aq.rate_bps / 8.0
        self._in_Bps = lam
        limit = self.aq.limit_bytes
        self._sat = self.gap >= limit - self.sat_tol and lam > drain
        if self._sat:
            scale = drain / lam if lam > 0 else 1.0
            for fid in self.flow_ids:
                in_Bps[fid] = in_Bps.get(fid, 0.0) * scale

    def breakpoint(self) -> Optional[float]:
        if self._sat:
            return None
        return fluid_gap_crossing(
            self.gap, self._in_Bps, self.aq.rate_bps / 8.0, self.aq.limit_bytes
        )

    def apply(self, dt: float, t_end: float, in_int: Dict[int, int],
              trace) -> None:
        drain = self.aq.rate_bps / 8.0
        arrived = sum(in_int.get(fid, 0) for fid in self.flow_ids)
        lam = arrived / dt if dt > 0 else 0.0
        limit = self.aq.limit_bytes
        g0 = self.gap
        if lam > drain and g0 < limit - self.sat_tol:
            t_sat = (limit - g0) / (lam - drain)
        elif lam > drain:
            t_sat = 0.0
        else:
            t_sat = math.inf
        if t_sat < dt:
            admitted_total = lam * t_sat + drain * (dt - t_sat)
            gap_end = limit
        else:
            admitted_total = lam * dt
            gap_end = min(limit, fluid_gap_after(g0, lam, drain, dt))
        dropped_total = max(0.0, arrived - admitted_total)
        drop_share = dropped_total / arrived if arrived > 0 else 0.0
        admitted_int = 0
        dropped_int = 0
        dropped_pkts = 0
        for fid in self.flow_ids:
            inb = in_int.get(fid, 0)
            if inb <= 0:
                continue
            drop_f = max(0, min(inb, int(round(inb * drop_share))))
            out_f = inb - drop_f
            in_int[fid] = out_f
            admitted_int += out_f
            dropped_int += drop_f
            if drop_f > 0:
                dropped_pkts += 1
                if trace is not None:
                    trace.emit_fields(
                        EV_RATE_LIMIT, t_end, aq_id=self.aq.aq_id,
                        flow_id=fid, size=drop_f, value=gap_end,
                        reason="fluid",
                    )
        # Re-derive the end gap from the *integer* admitted bytes so the
        # auditor's envelope check sees the same arithmetic it replays.
        gap_end = min(limit, max(0.0, g0 + admitted_int - drain * dt))
        self.gap = gap_end
        if trace is not None:
            trace.emit_fields(
                EV_FLUID_EPOCH, t_end, aq_id=self.aq.aq_id,
                node=self.aq.entity or None, size=admitted_int, value=gap_end,
            )
        arrived_pkts = sum(
            1 for fid in self.flow_ids if in_int.get(fid, 0) > 0
        )
        self.aq.fluid_advance(
            t_end, gap_end, admitted_int + dropped_int,
            arrived_pkts + dropped_pkts, dropped_int, dropped_pkts,
        )


class _QueueStage:
    """One port (queue + transmitter + link): a shared drop-tail backlog
    draining at line rate, per-flow composition tracked in integers."""

    __slots__ = ("queue", "transmitter", "link", "name", "C_Bps", "limit",
                 "flow_ids", "psize", "q_int", "B_int", "drain_debt",
                 "_in_Bps", "_out_Bps")

    def __init__(self, queue, transmitter, link) -> None:
        self.queue = queue
        self.transmitter = transmitter
        self.link = link
        self.name = queue.name
        self.C_Bps = link.rate_bps / 8.0
        self.limit = queue.limit_bytes
        self.flow_ids: List[int] = []
        self.psize: Dict[int, int] = {}
        self.q_int: Dict[int, int] = {}
        self.B_int = 0
        #: Seconds the link sat idle while parked for the drain barrier.
        #: The first epoch after engagement drains that much extra so a
        #: backlogged link loses no capacity to the mode switch.
        self.drain_debt = 0.0
        self._in_Bps: Dict[int, float] = {}
        self._out_Bps: Dict[int, float] = {}

    def capture(self) -> Dict[int, int]:
        comp = self.queue.fluid_capture()
        self.q_int = {fid: comp.get(fid, 0) for fid in self.flow_ids}
        self.B_int = sum(comp.values())
        return comp

    def rates(self, in_Bps: Dict[int, float]) -> None:
        self._in_Bps = {fid: in_Bps.get(fid, 0.0) for fid in self.flow_ids}
        S = sum(self._in_Bps.values())
        C = self.C_Bps
        B = float(self.B_int)
        out: Dict[int, float] = {}
        if B <= _EPS_BYTES and S <= C:
            out = dict(self._in_Bps)
        elif S > 0.0:
            scale = C / S
            out = {fid: lam * scale for fid, lam in self._in_Bps.items()}
        else:
            # Draining a leftover backlog with no input: composition share.
            for fid in self.flow_ids:
                share = self.q_int.get(fid, 0) / B if B > 0 else 0.0
                out[fid] = C * share
        self._out_Bps = out
        for fid, rate in out.items():
            in_Bps[fid] = rate

    def breakpoint(self) -> Optional[float]:
        S = sum(self._in_Bps.values())
        C = self.C_Bps
        B = float(self.B_int)
        if S > C and B < self.limit - _EPS_BYTES:
            return (self.limit - B) / (S - C)
        if S < C and B > _EPS_BYTES:
            return B / (C - S)
        return None

    def apply(self, dt: float, t_end: float, in_int: Dict[int, int],
              trace) -> None:
        C = self.C_Bps
        if self.drain_debt > 0.0 and dt > 0.0:
            # Catch up on capacity the barrier idled: drain as if the
            # link had been transmitting continuously. Harmless when the
            # backlog is small — output is capped by availability.
            C = C * (1.0 + self.drain_debt / dt)
            self.drain_debt = 0.0
        ins = {fid: in_int.get(fid, 0) for fid in self.flow_ids}
        total_in = sum(ins.values())
        S = total_in / dt if dt > 0 else 0.0
        B0 = float(self.B_int)
        # Fluid trajectory of the total backlog, clamped to [0, limit]:
        # drops begin once it pins at the limit.
        if S > C and B0 < self.limit:
            t_full = (self.limit - B0) / (S - C)
        elif S > C:
            t_full = 0.0
        else:
            t_full = math.inf
        if t_full < dt:
            dropped_total = (S - C) * (dt - t_full)
            B_end = float(self.limit)
        else:
            dropped_total = 0.0
            B_end = min(float(self.limit), max(0.0, B0 + (S - C) * dt))
        drop_share = (dropped_total / total_in) if total_in > 0 else 0.0
        # Composition relaxes from the initial backlog mix toward the input
        # mix with time constant ~B/C (exact when the backlog is constant).
        B_ref = max(B0, B_end, _EPS_BYTES)
        mix = 1.0 - math.exp(-C * dt / B_ref) if C > 0 else 1.0
        admitted = {}
        for fid in self.flow_ids:
            inb = ins[fid]
            drop_f = max(0, min(inb, int(round(inb * drop_share)))) if inb else 0
            admitted[fid] = inb - drop_f
        adm_total = sum(admitted.values())
        stats_drop_p = 0
        running = self.B_int
        enq_p = enq_b = deq_p = deq_b = drop_b = 0
        # Emit per-flow drops and enqueues first (auditor sees arrivals
        # before departures), then the dequeues, all stamped t_end.
        for fid in self.flow_ids:
            inb = ins[fid]
            if inb <= 0:
                continue
            drop_f = inb - admitted[fid]
            if drop_f > 0:
                stats_drop_p += 1
                drop_b += drop_f
                if trace is not None:
                    trace.emit_fields(
                        EV_DROP, t_end, node=self.name, flow_id=fid,
                        size=drop_f, value=float(running), reason="buffer",
                    )
            if admitted[fid] > 0:
                running += admitted[fid]
                enq_p += 1
                enq_b += admitted[fid]
                if trace is not None:
                    trace.emit_fields(
                        EV_ENQUEUE, t_end, node=self.name, flow_id=fid,
                        size=admitted[fid], value=float(running),
                    )
        # Per-flow end backlog (floats), then the integer chain.
        avail_after = running  # B0 + admitted
        for fid in self.flow_ids:
            q0 = self.q_int.get(fid, 0)
            avail = q0 + admitted[fid]
            if B_end <= _EPS_BYTES:
                q_new = 0
            else:
                w0 = (q0 / B0) if B0 > _EPS_BYTES else 0.0
                ws = (admitted[fid] / adm_total) if adm_total > 0 else w0
                if B0 <= _EPS_BYTES:
                    w0 = ws
                q_new_f = B_end * ((1.0 - mix) * w0 + mix * ws)
                q_new = max(0, min(avail, int(round(q_new_f))))
            out_f = avail - q_new
            self.q_int[fid] = q_new
            in_int[fid] = out_f
            if out_f > 0:
                avail_after -= out_f
                deq_p += 1
                deq_b += out_f
                if trace is not None:
                    trace.emit_fields(
                        EV_DEQUEUE, t_end, node=self.name, flow_id=fid,
                        size=out_f, value=float(avail_after),
                    )
            else:
                in_int[fid] = 0
        self.B_int = sum(self.q_int.values())
        self.queue.fluid_account(
            enq_p, enq_b, deq_p, deq_b, stats_drop_p, drop_b, self.B_int
        )
        out_total = deq_b
        stats = self.link.stats
        stats.delivered_bytes += out_total
        for fid in self.flow_ids:
            out = in_int.get(fid, 0)
            size = self.psize.get(fid, 0)
            if out > 0 and size > 0:
                stats.delivered_packets += -(-out // size)
        if self.C_Bps > 0:
            stats.busy_time += out_total / self.C_Bps

    def restore(self, flows: Dict[int, _FlowState], now: float) -> None:
        """Synthesize packets matching the integer per-flow backlog and
        hand them back to the packet-mode queue, round-robin across flows
        so the rebuilt FIFO stays fair."""
        per_flow: List[List] = []
        for fid in self.flow_ids:
            q = self.q_int.get(fid, 0)
            if q <= 0:
                continue
            fs = flows[fid]
            size = fs.sender.packet_size
            pkts = []
            n, rem = divmod(q, size)
            for _ in range(n):
                pkts.append(self._mk(fs, size, now))
            if rem > 0:
                pkts.append(self._mk(fs, rem, now))
            per_flow.append(pkts)
        interleaved = []
        while per_flow:
            for pkts in list(per_flow):
                interleaved.append(pkts.pop(0))
                if not pkts:
                    per_flow.remove(pkts)
        self.queue.fluid_restore(interleaved, now)

    def _mk(self, fs: _FlowState, size: int, now: float):
        packet = make_udp(fs.src.name, fs.sender.dst, fs.sender.flow_id, size)
        packet.aq_ingress_id = fs.sender.aq_ingress_id
        packet.aq_egress_id = fs.sender.aq_egress_id
        packet.sent_time = now
        return packet


class FluidEngine:
    """Drives a network in hybrid fluid/packet mode.

    Construct with the built network and every traffic source in it (all
    must be :class:`~repro.transport.udp.UdpFlow`; any unregistered
    source would starve while transmitters sit in fluid mode), then call
    :meth:`run` instead of ``network.run``. The engine alternates between
    closed-form epochs (when the flow set is stable and the topology
    eligible) and ordinary event-driven slices (whenever anything the
    closed form cannot express is pending).
    """

    def __init__(
        self,
        network,
        flows: List[UdpFlow],
        min_epoch: float = 1e-6,
        retry_interval: float = 250e-6,
    ) -> None:
        self.network = network
        self.sim = network.sim
        self.min_epoch = min_epoch
        self.retry_interval = retry_interval
        self.epochs = 0
        self.engagements = 0
        self.rejections: Dict[str, int] = {}
        self.exits: Dict[str, int] = {}
        tele = self.sim.telemetry
        self._tele = tele if tele is not None and tele.enabled else None
        self._flows: Dict[int, _FlowState] = {}
        self._stages: List[_QueueStage | _AqStage] = []
        self._queue_stages: List[_QueueStage] = []
        self._aq_stages: List[_AqStage] = []
        self._shaper_stages: List[_ShaperStage] = []
        self._barrier = 0.0
        self._static_reason: Optional[str] = None
        try:
            self._build(flows)
        except FluidIneligible as exc:
            self._static_reason = str(exc)

    # -- public API ----------------------------------------------------------

    @property
    def static_reason(self) -> Optional[str]:
        """Why fluid mode is statically impossible, or ``None`` if it isn't."""
        return self._static_reason

    def stats(self) -> dict:
        return {
            "epochs": self.epochs,
            "engagements": self.engagements,
            "exits": dict(self.exits),
            "rejections": dict(self.rejections),
            "static_reason": self._static_reason,
        }

    def run(self, until: float) -> int:
        """Advance the network to ``until``, fluid where possible.

        Returns the number of analytic epochs closed (also available as
        ``self.epochs``)."""
        sim = self.sim
        if self._static_reason is not None:
            sim.run(until=until)
            return 0
        start_epochs = self.epochs
        while sim.now < until:
            if self._try_engage(until):
                reason = self._run_epochs(until)
                self._disengage()
                self.exits[reason] = self.exits.get(reason, 0) + 1
            if sim.now >= until:
                break
            sim.run(until=min(until, sim.now + self.retry_interval))
        return self.epochs - start_epochs

    # -- stage graph construction --------------------------------------------

    def _build(self, flows: List[UdpFlow]) -> None:
        if not flows:
            raise FluidIneligible("no flows registered")
        if self._tele is not None:
            if self._tele.flightrec is not None:
                raise FluidIneligible("flight recorder needs per-packet hops")
            if self._tele.timewin is not None:
                raise FluidIneligible("time-window recorder needs per-packet records")
        network = self.network
        queue_stage_by_id: Dict[int, _QueueStage] = {}
        aq_stage_by_id: Dict[int, _AqStage] = {}
        shaper_flows: Dict[int, int] = {}
        edges: Dict[int, set] = {}
        for flow in flows:
            if not isinstance(flow, UdpFlow):
                raise FluidIneligible(
                    f"flow {getattr(flow, 'flow_id', '?')} is not a UdpFlow"
                )
            sender = flow.sender
            src = sender.host
            dst_host = network.hosts.get(sender.dst)
            if dst_host is None:
                raise FluidIneligible(f"unknown destination {sender.dst}")
            fs = _FlowState(flow, src, dst_host)
            if src.on_transmit is not None:
                raise FluidIneligible(f"host {src.name} has an on_transmit tap")
            shaper = src._shaper
            if shaper is not None:
                if not isinstance(shaper, TokenBucketShaper):
                    raise FluidIneligible(
                        f"host {src.name} has an unsupported shaper"
                    )
                count = shaper_flows.get(id(shaper), 0) + 1
                shaper_flows[id(shaper)] = count
                if count > 1:
                    raise FluidIneligible(
                        f"shaper on {src.name} is shared by multiple flows"
                    )
                stage = _ShaperStage(shaper, sender.flow_id)
                fs.shaper_stage = stage
                self._shaper_stages.append(stage)
            node = src
            prev_stage = None
            hops = 0
            while True:
                hops += 1
                if hops > 16:
                    raise FluidIneligible("path too long (routing loop?)")
                if isinstance(node, Host):
                    if node.name == sender.dst:
                        break
                    transmitter = node.transmitter
                    queue = node.nic_queue
                    link = transmitter.link
                elif isinstance(node, Switch):
                    for hook in node.ingress_hooks:
                        owner = getattr(hook, "__self__", None)
                        if not isinstance(owner, AqPipeline):
                            raise FluidIneligible(
                                f"switch {node.name} has a non-AQ ingress hook"
                            )
                        aq = owner.lookup(sender.aq_ingress_id, INGRESS)
                        if aq is not None:
                            prev_stage = self._attach_aq(
                                aq, fs, prev_stage, aq_stage_by_id, edges
                            )
                    if node.taps:
                        raise FluidIneligible(f"switch {node.name} has taps")
                    port = node.route_for(sender.dst)
                    transmitter = port.transmitter
                    queue = port.queue
                    link = port.link
                else:
                    raise FluidIneligible(f"unknown node type {type(node).__name__}")
                for hook in transmitter.egress_hooks:
                    owner = getattr(hook, "__self__", None)
                    if not isinstance(owner, AqPipeline):
                        raise FluidIneligible(
                            f"{transmitter.name} has a non-AQ egress hook"
                        )
                    if owner.lookup(sender.aq_egress_id, EGRESS) is not None:
                        raise FluidIneligible(
                            f"egress AQ on {transmitter.name} is not fluid-capable"
                        )
                if not getattr(queue, "supports_fluid", False):
                    raise FluidIneligible(
                        f"queue {queue.name or type(queue).__name__} lacks "
                        f"bulk fluid accounting"
                    )
                if queue.ecn_threshold_bytes is not None:
                    raise FluidIneligible(
                        f"queue {queue.name} marks ECN per packet"
                    )
                stage = queue_stage_by_id.get(id(queue))
                if stage is None:
                    stage = _QueueStage(queue, transmitter, link)
                    queue_stage_by_id[id(queue)] = stage
                    self._queue_stages.append(stage)
                    edges.setdefault(id(stage), set())
                if sender.flow_id not in stage.flow_ids:
                    stage.flow_ids.append(sender.flow_id)
                    stage.psize[sender.flow_id] = sender.packet_size
                fs.stages.append(stage)
                if prev_stage is not None:
                    edges.setdefault(id(prev_stage), set()).add(id(stage))
                prev_stage = stage
                handler = link._handler
                node = getattr(handler, "__self__", None)
                if node is None:
                    raise FluidIneligible(
                        f"link {link.name} handler is not a network node"
                    )
                barrier = transmission_time(
                    sender.packet_size, link.rate_bps
                ) + link.prop_delay
                if barrier > self._barrier:
                    self._barrier = barrier
            if fs.dst.receive_taps:
                raise FluidIneligible(f"host {fs.dst.name} has receive taps")
            self._flows[sender.flow_id] = fs
        self._stages = self._topo_sort(edges)
        self._barrier *= 2.0

    def _attach_aq(self, aq, fs, prev_stage, aq_stage_by_id, edges):
        if aq.policy.kind != DROP_BASED:
            raise FluidIneligible(
                f"AQ {aq.aq_id} uses a {aq.policy.kind} feedback policy"
            )
        if aq.record_delays:
            raise FluidIneligible(f"AQ {aq.aq_id} records per-packet delays")
        stage = aq_stage_by_id.get(id(aq))
        if stage is None:
            stage = _AqStage(aq)
            aq_stage_by_id[id(aq)] = stage
            self._aq_stages.append(stage)
            edges.setdefault(id(stage), set())
        if fs.sender.flow_id not in stage.flow_ids:
            stage.flow_ids.append(fs.sender.flow_id)
        stage.sat_tol = max(stage.sat_tol, float(fs.sender.packet_size))
        fs.stages.append(stage)
        if prev_stage is not None:
            edges.setdefault(id(prev_stage), set()).add(id(stage))
        return stage

    def _topo_sort(self, edges):
        by_id = {}
        for stage in self._queue_stages:
            by_id[id(stage)] = stage
        for stage in self._aq_stages:
            by_id[id(stage)] = stage
        indeg = {sid: 0 for sid in by_id}
        for src_id, dsts in edges.items():
            for dst_id in dsts:
                indeg[dst_id] = indeg.get(dst_id, 0) + 1
        ready = [sid for sid, d in indeg.items() if d == 0]
        order = []
        while ready:
            sid = ready.pop()
            order.append(by_id[sid])
            for dst_id in edges.get(sid, ()):
                indeg[dst_id] -= 1
                if indeg[dst_id] == 0:
                    ready.append(dst_id)
        if len(order) != len(by_id):
            raise FluidIneligible("stage graph has a cycle")
        return order

    # -- engagement ----------------------------------------------------------

    def _reject(self, reason: str) -> bool:
        self.rejections[reason] = self.rejections.get(reason, 0) + 1
        return False

    def _links_ok(self) -> bool:
        for stage in self._queue_stages:
            if stage.link._faulted:
                return False
        return True

    def _try_engage(self, until: float) -> bool:
        sim = self.sim
        if not self._links_ok():
            return self._reject("link_faulted")
        # Pre-flight: the earliest hard epoch bound must leave room for
        # the barrier plus a worthwhile epoch, otherwise engagement would
        # perturb the run (idle the links for the barrier) only to fall
        # straight back to packet mode. Calendar events are deliberately
        # NOT consulted here: most of them belong to the senders this
        # engagement is about to pause; a genuinely foreign event simply
        # bounds the first epoch ("event" exit) in the real plan.
        t_hard = until
        for fs in self._flows.values():
            sender = fs.sender
            if not sender.is_active(sim.now):
                continue
            if sender.stop_time is not None and sender.stop_time < t_hard:
                t_hard = sender.stop_time
            if sender.total_bytes is not None and sender.rate_bps > 0:
                remaining = sender.total_bytes - sender.bytes_sent
                t_ex = sim.now + max(0.0, remaining * 8.0 / sender.rate_bps)
                if t_ex < t_hard:
                    t_hard = t_ex
        if t_hard <= sim.now + self._barrier + self.min_epoch:
            return self._reject("horizon")
        # Park only the transmitters for the drain barrier: senders and
        # shapers keep running per-packet, so an engagement that aborts
        # (or immediately falls back) costs them no emission time — their
        # packets simply land in the parked queues and are captured as
        # backlog. Whatever is mid-serialization or on the wire lands
        # within one tx+prop as well.
        busy0 = {
            id(stage): stage.link.stats.busy_time
            for stage in self._queue_stages
        }
        t_park = sim.now
        for stage in self._queue_stages:
            stage.transmitter.set_mode(MODE_FLUID)
        sim.run(until=sim.now + self._barrier)
        if not self._links_ok():
            self._unpark()
            return self._reject("fault_during_barrier")
        foreign = None
        for stage in self._queue_stages:
            comp = stage.capture()
            for fid in comp:
                if fid not in self._flows:
                    foreign = fid
        if foreign is not None:
            self._restore_queues()
            self._unpark()
            return self._reject("foreign_flow")
        now = sim.now
        for stage in self._queue_stages:
            busy = stage.link.stats.busy_time - busy0[id(stage)]
            stage.drain_debt = max(0.0, (now - t_park) - busy)
        for fs in self._flows.values():
            fs.resume_at = (
                fs.sender.fluid_pause() if fs.sender.is_active(now) else None
            )
        for stage in self._shaper_stages:
            stage.capture()
        for stage in self._aq_stages:
            stage.capture(now)
        self.engagements += 1
        return True

    def _unpark(self) -> None:
        """Abort an engagement attempt before anything beyond the
        transmitters was touched: back to packet mode, re-arm the pumps."""
        for stage in self._queue_stages:
            stage.transmitter.set_mode(MODE_PACKET)
            stage.transmitter.kick()

    def _restore_queues(self) -> None:
        for stage in self._queue_stages:
            stage.restore(self._flows, self.sim.now)

    # -- the epoch loop ------------------------------------------------------

    def _run_epochs(self, until: float) -> str:
        while True:
            plan = self._plan_epoch(until)
            if plan is None:
                return "fallback"
            t_end, lam, exit_reason = plan
            self._apply_epoch(t_end, lam)
            self.epochs += 1
            if exit_reason is not None:
                return exit_reason
            if self.sim.now >= until:
                return "until"

    def _plan_epoch(
        self, until: float
    ) -> Optional[Tuple[float, Dict[int, float], Optional[str]]]:
        sim = self.sim
        t0 = sim.now
        t_hard = until
        exit_reason = "until"
        nxt = sim.peek_time()
        if nxt is not None and nxt < t_hard:
            t_hard = nxt
            exit_reason = "event"
        lam: Dict[int, float] = {}
        for fid, fs in self._flows.items():
            sender = fs.sender
            # Fluid-modeled only when *we* paused it: a sender that became
            # active during the drain barrier still owns a calendar event,
            # which bounds this epoch via peek_time above.
            if sender._pending is not None or not sender.is_active(t0):
                lam[fid] = 0.0
                continue
            rate = sender.rate_bps / 8.0
            lam[fid] = rate
            if sender.stop_time is not None and sender.stop_time < t_hard:
                t_hard = sender.stop_time
                exit_reason = "flow_finish"
            if sender.total_bytes is not None and rate > 0:
                remaining = sender.total_bytes - sender.bytes_sent - fs.carry
                t_ex = t0 + max(0.0, remaining / rate)
                if t_ex < t_hard:
                    t_hard = t_ex
                    exit_reason = "flow_finish"
        if t_hard <= t0 + self.min_epoch:
            return None
        # Phase 1: propagate rates through the stage graph, collecting the
        # earliest internal regime change.
        rates = dict(lam)
        t_soft = math.inf
        for fs in self._flows.values():
            stage = fs.shaper_stage
            if stage is None:
                continue
            rates[stage.flow_id] = stage.rates(rates[stage.flow_id])
            bp = stage.breakpoint()
            if bp is not None and bp > 0 and t0 + bp < t_soft:
                t_soft = t0 + bp
        for stage in self._stages:
            stage.rates(rates)
            bp = stage.breakpoint()
            if bp is not None and bp > 0 and t0 + bp < t_soft:
                t_soft = t0 + bp
        if t_soft < t_hard * (1.0 - _EPS_TIME):
            # Internal regime change: stay fluid. Never plan an epoch
            # shorter than min_epoch — the apply path integrates across
            # regime changes piecewise (queue fill/empty, A-Gap crossing,
            # shaper phases), so stepping slightly past a breakpoint is
            # safe, whereas bailing out on every sub-min_epoch breakpoint
            # would thrash back to packet mode each time a residual
            # backlog drains in a few hundred nanoseconds.
            t_end = min(t_hard, max(t_soft, t0 + self.min_epoch))
            reason = None if t_end < t_hard * (1.0 - _EPS_TIME) else exit_reason
        else:
            t_end = t_hard
            reason = exit_reason
        if t_end <= t0:
            return None
        return t_end, lam, reason

    def _apply_epoch(self, t_end: float, lam: Dict[int, float]) -> None:
        sim = self.sim
        t0 = sim.now
        dt = t_end - t0
        sim.advance_to(t_end)
        trace = self._tele.trace if self._tele is not None else None
        in_int: Dict[int, int] = {}
        for fid, fs in self._flows.items():
            rate = lam.get(fid, 0.0)
            size = fs.sender.packet_size
            nbytes = 0
            if rate > 0.0:
                # The sender is re-modeled analytically from here on; its
                # pre-pause cadence is no longer meaningful on disengage.
                fs.resume_at = None
                raw = rate * dt + fs.carry
                n = int(raw // size)
                nbytes = n * size
                if fs.sender.total_bytes is not None:
                    budget = fs.sender.total_bytes - fs.sender.bytes_sent
                    if nbytes > budget:
                        n = budget // size
                        nbytes = n * size
                        raw = nbytes + fs.carry
                fs.carry = raw - nbytes
                fs.sender.fluid_emit(nbytes, n)
            injected = nbytes
            if fs.shaper_stage is not None:
                # Always run the shaper: a backlog left behind by a finished
                # or idle sender keeps draining into the network.
                injected = fs.shaper_stage.apply(dt, t_end, nbytes, size, trace)
            in_int[fid] = injected
            if injected > 0 and trace is not None:
                trace.emit_fields(
                    EV_HOST_SEND, t_end, node=fs.src.name,
                    flow_id=fid, size=injected,
                )
        for stage in self._stages:
            stage.apply(dt, t_end, in_int, trace)
        for fid, fs in self._flows.items():
            out = in_int.get(fid, 0)
            if out <= 0:
                continue
            if trace is not None:
                trace.emit_fields(
                    EV_DELIVER, t_end, node=fs.dst.name, flow_id=fid, size=out,
                )
            sink = fs.sink
            sink.delivered_bytes += out
            sink.delivered_packets += -(-out // fs.sender.packet_size)
            if sink.on_deliver is not None:
                sink.on_deliver(out, t_end)

    # -- disengagement -------------------------------------------------------

    def _disengage(self) -> None:
        now = self.sim.now
        self._restore_queues()
        for stage in self._queue_stages:
            stage.drain_debt = 0.0
            stage.transmitter.set_mode(MODE_PACKET)
            stage.transmitter.kick()
        for fs in self._flows.values():
            if fs.shaper_stage is not None:
                fs.shaper_stage.restore(fs, now, fs.sender.packet_size)
            sender = fs.sender
            if sender._pending is None and sender.is_active(now):
                if fs.resume_at is not None and fs.resume_at >= now:
                    # No epoch re-modeled this sender: restore the exact
                    # per-packet cadence the pause cancelled.
                    when = fs.resume_at
                else:
                    rate = sender.rate_bps / 8.0
                    when = now + max(
                        0.0, (sender.packet_size - fs.carry) / rate
                    )
                    fs.carry = 0.0
                sender.fluid_resume(when)
            fs.resume_at = None
