"""Conservative-synchronization parallel DES: one fabric, many workers.

The engine (:mod:`repro.sim.engine`) is strictly single-threaded, so a
large fat-tree run is wall-clock-bound by one core even after the fluid
fast path. This module shards **one scenario** across partitions, each
with its own :class:`~repro.sim.engine.Simulator`, advancing in lockstep
epochs of conservative lookahead ``L`` — the minimum propagation delay of
any *cut link* (a link whose endpoints live in different partitions).

Why no null messages are needed
-------------------------------

Cut links are modeled by :class:`~repro.net.link.BoundaryLink`: the
sending side keeps its queue/transmitter/fault machinery, but delivery
becomes a *capture* of ``(arrival_time, link_id, packet)`` into the
epoch's outbound batch, where ``arrival_time = serialization_end +
wire_delay``. A packet serialized during epoch ``(T-L, T]`` therefore
arrives at ``(T, T+L]`` — strictly after the barrier at ``T``. Running
every partition to ``T``, exchanging batches, and scheduling the arrivals
is thus always safe: the classic synchronous/barrier variant of
conservative PDES (Chandy–Misra–Bryant lookahead without per-channel
null messages).

Determinism contract (digest equivalence across shard counts)
-------------------------------------------------------------

A sharded run is **bit-identical** to the single-partition run of the
same scenario — same per-flow byte counts, same drop counts, same event
totals — because every source of ordering is partition-count-invariant:

* the *cut set* is a function of the topology alone (the fat-tree
  builder routes every agg<->core link through boundary machinery even
  when both ends share a partition, including ``shards=1``);
* each partition builds by iterating the *full* scenario spec in a fixed
  global order, skipping non-owned elements, so relative event seq order
  within a partition never depends on what other partitions exist;
* flow ids are assigned from the full spec (never allocated per
  partition), and per-component RNG streams come from
  :class:`~repro.sim.rng.RngRegistry` name derivation, which is
  construction-order independent;
* inbound boundary batches are applied sorted by ``(arrival_time,
  link_id, departure_seq)`` — a total order independent of worker
  completion order *and* of the shard count (link ids are global); and
* barrier-scheduled arrivals always carry larger event seqs than any
  event scheduled during earlier epochs, which matches the order the
  single-partition run would have produced (the import there is also
  scheduled at the barrier).

The conservation auditor stays closed per partition via synthetic
events: a capture emits a ``deliver`` at the cut-link name (the packet
left this partition's ledger) and an import emits a ``host_send`` at the
same name (it entered the destination ledger). Each shard's per-flow
ledger therefore balances independently — audit-clean at any shard
count.

Mode composition
----------------

Sharding composes with the packet engine and all telemetry layers
(audit, time windows, flight recording *within* a partition). It does
**not** compose with the fluid fast path (:mod:`repro.sim.fluid`): a
fluid epoch advances a link analytically past barrier times, which would
break the capture-before-barrier invariant; scenario builders must not
engage a :class:`FluidEngine` on a sharded run. Probabilistic
``packet_corruption`` faults are deterministic for a *fixed* shard count
but only digest-comparable across counts when at most one target draws
from the plan RNG (with several corrupting links the single-process run
interleaves one RNG stream across them in global arrival order, which a
partitioned run cannot reproduce); blackouts and restarts are exact.

Two drivers share all of the above:

* :func:`run_lockstep` — every partition in one process (tests, the
  ``shard/equiv/*`` jobs, and the deterministic-ordering regression
  which permutes batch arrival order);
* :func:`run_sharded` — spawn-isolated workers (one process per
  partition) exchanging batches over pipes, reusing the
  :mod:`repro.harness.runner` worker conventions.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError, ShardError
from ..net.link import BoundaryLink
from ..net.packet import Packet
from ..obs.events import EV_DELIVER, EV_HOST_SEND
from ..obs.flightrec import HopRecord

#: Packet header fields serialized across a cut, in wire order. The
#: transient fields (``enqueue_time``, ``flight``, ``flight_digest``,
#: ``packet_id``) stay behind: the first is queue-local scratch state and
#: flights do not cross cuts (each partition records its own hops);
#: ``packet_id`` is a per-process counter that is invisible to results.
PACKET_COLUMNS = (
    "kind", "src", "dst", "flow_id", "size", "seq", "ack", "fin", "ect",
    "ce", "ece", "aq_ingress_id", "aq_egress_id", "virtual_delay",
    "echo_virtual_delay", "sent_time", "retransmission",
)

_CTOR_SLICE = 9  # columns [0:9] are Packet constructor arguments


class BoundaryBatch:
    """Struct-of-arrays batch of boundary crossings for one destination
    partition within one epoch.

    Parallel primitive-typed lists (not per-packet objects) keep the
    pickled pipe payload compact and the per-partition working set flat —
    a worker never materializes foreign packets until the barrier.
    """

    __slots__ = ("times", "links", "seqs", "cols")

    def __init__(self) -> None:
        self.times: List[float] = []
        self.links: List[int] = []
        self.seqs: List[int] = []
        self.cols: Tuple[List, ...] = tuple([] for _ in PACKET_COLUMNS)

    def append(self, arrival_t: float, link_id: int, seq: int, packet: Packet) -> None:
        self.times.append(arrival_t)
        self.links.append(link_id)
        self.seqs.append(seq)
        cols = self.cols
        for index, name in enumerate(PACKET_COLUMNS):
            cols[index].append(getattr(packet, name))

    def __len__(self) -> int:
        return len(self.times)

    def rows(self) -> List[Tuple[float, int, int, tuple]]:
        """Decode into sortable ``(time, link_id, seq, header_values)`` rows."""
        cols = self.cols
        return [
            (self.times[n], self.links[n], self.seqs[n],
             tuple(col[n] for col in cols))
            for n in range(len(self.times))
        ]

    # Plain __slots__ pickling (protocol 2+) ships the lists as-is.


def packet_from_row(values: tuple) -> Packet:
    """Rebuild a :class:`Packet` from one decoded batch row."""
    packet = Packet(
        *values[:_CTOR_SLICE],
        aq_ingress_id=values[11],
        aq_egress_id=values[12],
        retransmission=values[16],
    )
    packet.ce = values[9]
    packet.ece = values[10]
    packet.virtual_delay = values[13]
    packet.echo_virtual_delay = values[14]
    packet.sent_time = values[15]
    return packet


def barrier_times(duration: float, lookahead: float) -> List[float]:
    """The shared epoch schedule: ``L, 2L, ...`` clamped to ``duration``.

    Every driver — in-process, spawn workers, and the coordinator — must
    derive barriers from this one function so float accumulation is
    bit-identical everywhere.
    """
    if duration <= 0:
        raise ConfigurationError(f"duration must be positive, got {duration}")
    if lookahead <= 0:
        raise ConfigurationError(f"lookahead must be positive, got {lookahead}")
    times: List[float] = []
    t = 0.0
    while t < duration:
        t = min(t + lookahead, duration)
        times.append(t)
    return times


class ShardRuntime:
    """One partition's boundary machinery: the *boundary context* the
    topology builder wires cut links through, plus epoch stepping.

    Life cycle: construct with the partition plan, hand to the builder
    (which calls :meth:`make_egress` / :meth:`register_import` for every
    cut link and then :meth:`attach_network`), then drive with
    :meth:`run_epoch` / :meth:`apply_inbound` — directly, or via
    :func:`run_lockstep` / :func:`run_sharded`.
    """

    def __init__(self, partition_id: int, plan) -> None:
        if not 0 <= partition_id < plan.shards:
            raise ConfigurationError(
                f"partition {partition_id} outside [0, {plan.shards})"
            )
        self.partition_id = partition_id
        self.plan = plan
        self.num_partitions = plan.shards
        self.lookahead = plan.lookahead
        self.sim = None
        self.network = None
        self._tele = None
        self._outbox = [BoundaryBatch() for _ in range(self.num_partitions)]
        self._imports: Dict[int, Callable[[Packet], None]] = {}
        self._import_names: Dict[int, str] = {}
        self.exported_packets = 0
        self.imported_packets = 0

    # -- boundary-context interface (called by the topology builder) -------

    def make_egress(self, sim, cut, rate_bps: float, prop_delay: float) -> BoundaryLink:
        """Create the capture-side proxy for one owned cut link."""
        if prop_delay < self.lookahead:
            raise ConfigurationError(
                f"cut link {cut.name} propagation {prop_delay} below the "
                f"lookahead {self.lookahead}: arrivals could land before "
                f"the next barrier"
            )
        if self.sim is None:
            self.sim = sim
        elif self.sim is not sim:
            raise ConfigurationError(
                "one ShardRuntime cannot span two simulators"
            )
        return BoundaryLink(
            sim, rate_bps, prop_delay, cut.link_id, cut.dst_partition,
            self._capture, name=cut.name,
        )

    def register_import(self, cut, handler: Callable[[Packet], None]) -> None:
        """Bind the receive side of one owned cut link."""
        self._imports[cut.link_id] = handler
        self._import_names[cut.link_id] = cut.name

    def attach_network(self, network) -> None:
        """Adopt the built partition network (sim + telemetry refs)."""
        self.network = network
        if self.sim is None:
            self.sim = network.sim
        tele = network.sim.telemetry
        self._tele = tele if tele is not None and tele.enabled else None

    # -- data path ----------------------------------------------------------

    def _capture(self, link: BoundaryLink, arrival_t: float, packet: Packet) -> None:
        """BoundaryLink delivery: book the export and close the local
        ledger with a synthetic ``deliver`` at the cut-link name."""
        self._outbox[link.dest_partition].append(
            arrival_t, link.link_id, link.exported, packet
        )
        link.exported += 1
        self.exported_packets += 1
        tele = self._tele
        if tele is not None:
            now = self.sim.now
            tele.trace.emit_fields(
                EV_DELIVER, now, node=link.name,
                flow_id=packet.flow_id, size=packet.size,
            )
            fr = tele.flightrec
            if fr is not None and packet.flight is not None:
                # Seal this partition's segment at the cut. The trailing
                # "cut" hop carries the correlation key — the same
                # ``(link_id, departure_seq)`` pair already serialized in
                # the boundary batch — so ``stitch_flight_dumps`` can
                # chain it to the importing shard's segment.
                corr = f"{link.link_id}:{link.exported - 1}"
                packet.flight.append(
                    HopRecord("cut", link.name, now, corr=corr)
                )
                fr.complete(packet, now, "exported", node=link.name)

    def _inject(self, link_id: int, seq: int, values: tuple) -> None:
        """Arrival of an imported boundary packet (scheduled at a barrier)."""
        handler = self._imports.get(link_id)
        if handler is None:
            raise ShardError(
                f"partition {self.partition_id} received a packet for "
                f"unregistered cut link id {link_id}"
            )
        packet = packet_from_row(values)
        self.imported_packets += 1
        tele = self._tele
        if tele is not None:
            # Synthetic injection so the destination ledger opens where
            # the source ledger closed (same node name on both events).
            tele.trace.emit_fields(
                EV_HOST_SEND, self.sim.now, node=self._import_names[link_id],
                flow_id=packet.flow_id, size=packet.size,
            )
            fr = tele.flightrec
            if fr is not None:
                # Open the continuation segment under the exporter's key.
                fr.begin_segment(
                    packet, self.sim.now, self._import_names[link_id],
                    f"{link_id}:{seq}",
                )
        handler(packet)

    # -- epoch stepping ------------------------------------------------------

    def run_epoch(self, until: float) -> List[BoundaryBatch]:
        """Advance to the barrier at ``until``; returns the outbound
        batches of this epoch, indexed by destination partition."""
        if self.sim is None:
            raise ConfigurationError("ShardRuntime has no simulator attached")
        self.sim.run(until=until)
        out = self._outbox
        self._outbox = [BoundaryBatch() for _ in range(self.num_partitions)]
        return out

    def apply_inbound(self, batches: Sequence[BoundaryBatch]) -> int:
        """Schedule every inbound crossing, in the canonical total order
        ``(arrival_time, link_id, departure_seq)``.

        Sorting here — never relying on batch arrival order — is what
        keeps digests stable across OS scheduling and shard counts; the
        regression test permutes the batch list to prove it.
        """
        rows: List[Tuple[float, int, int, tuple]] = []
        for batch in batches:
            rows.extend(batch.rows())
        rows.sort(key=lambda row: (row[0], row[1], row[2]))
        sim = self.sim
        now = sim.now
        for arrival_t, link_id, seq, values in rows:
            if arrival_t <= now:
                raise ShardError(
                    f"boundary packet arrival {arrival_t} not after barrier "
                    f"{now}: lookahead contract violated"
                )
            sim.schedule_at(arrival_t, self._inject, link_id, seq, values)
        return len(rows)


# -- live shard health ---------------------------------------------------------


def _rss_kb() -> Optional[int]:
    """Process memory high-water mark in KB (``ru_maxrss``; platform
    units — KB on Linux), or ``None`` where ``resource`` is missing."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def partition_backlog_bytes(runtime: "ShardRuntime") -> int:
    """Bytes sitting in this partition's switch-port queues right now."""
    network = runtime.network
    if network is None:
        return 0
    total = 0
    for switch in getattr(network, "switches", {}).values():
        for port in switch.ports.values():
            total += port.queue.bytes_queued
    return total


class HeartbeatTracker:
    """Builds the per-epoch health frames a shard streams while running.

    One frame per (partition, epoch), emitted *after* the epoch's events
    ran and *before* the barrier exchange — purely observational, so the
    stream is digest-neutral by construction. Fields:

    ``partition``, ``epoch``, ``watermark_s`` (the sim-time barrier this
    shard just reached), ``wall_s`` (since the tracker started),
    ``events`` (cumulative), ``events_per_s`` (over the last epoch),
    ``backlog_events`` (pending event count), ``backlog_bytes`` (queued
    bytes across switch ports), ``rss_kb`` (memory high-water), and
    ``barrier_wait_s`` (cumulative time blocked on earlier barriers —
    the straggler signal: small for the slowest shard, large for the
    ones waiting on it).
    """

    def __init__(self, partition: int) -> None:
        self.partition = partition
        self._t0 = time.perf_counter()
        self._last_wall = 0.0
        self._last_events = 0
        self.barrier_wait_s = 0.0

    def frame(self, runtime: "ShardRuntime", epoch: int, barrier: float) -> dict:
        wall = time.perf_counter() - self._t0
        events = runtime.sim.events_processed
        delta_wall = wall - self._last_wall
        delta_events = events - self._last_events
        self._last_wall = wall
        self._last_events = events
        return {
            "partition": self.partition,
            "epoch": epoch,
            "watermark_s": barrier,
            "wall_s": wall,
            "events": events,
            "events_per_s": (delta_events / delta_wall) if delta_wall > 0 else 0.0,
            "backlog_events": runtime.sim.pending_events(),
            "backlog_bytes": partition_backlog_bytes(runtime),
            "rss_kb": _rss_kb(),
            "barrier_wait_s": self.barrier_wait_s,
        }


# -- in-process driver ---------------------------------------------------------


def run_lockstep(
    runtimes: Sequence[ShardRuntime],
    duration: float,
    permute=None,
    on_epoch: Optional[Callable[[int, float], None]] = None,
) -> int:
    """Drive every partition in this process through the epoch schedule.

    ``permute(order, epoch) -> order`` (optional) reorders the source-
    partition visitation per epoch — the determinism regression hook
    simulating arbitrary worker completion order. ``on_epoch(epoch,
    barrier)`` (optional) fires after each barrier's batches are applied
    — the inline driver's health-frame hook. Returns the number of
    epochs executed.
    """
    if not runtimes:
        raise ConfigurationError("run_lockstep needs at least one runtime")
    lookaheads = {rt.lookahead for rt in runtimes}
    if len(lookaheads) != 1:
        raise ShardError(f"partitions disagree on lookahead: {sorted(lookaheads)}")
    schedule = barrier_times(duration, lookaheads.pop())
    for epoch, barrier in enumerate(schedule):
        outs = [rt.run_epoch(barrier) for rt in runtimes]
        order = list(range(len(runtimes)))
        if permute is not None:
            order = permute(order, epoch)
        for j, rt in enumerate(runtimes):
            inbound = [outs[i][j] for i in order if len(outs[i][j])]
            rt.apply_inbound(inbound)
        if on_epoch is not None:
            on_epoch(epoch, barrier)
    return len(schedule)


# -- spawn-isolated workers ----------------------------------------------------


def shard_worker_seed(seed_base: str, partition: int) -> int:
    """Stable per-partition seed, mirroring ``JobSpec.worker_seed``."""
    digest = hashlib.sha256(f"{seed_base}/{partition}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def _shard_worker_main(payload: dict, conn) -> None:
    """Worker entry point: build one partition, lockstep over the pipe.

    Protocol (worker side): per epoch optionally send ``("hb", epoch,
    frame)`` (when the payload enables heartbeats), then send ``("out",
    epoch, [(dest, batch), ...])`` and block for ``("in", epoch,
    [batches])``; after the last barrier send ``("done", report)``. A
    failure at any point sends ``("done", report)`` with
    ``status="failed"`` so the coordinator can abort the round instead of
    deadlocking.
    """
    import contextlib
    import random

    report: dict = {"partition": payload["partition"], "status": "failed"}
    try:
        seed = payload["worker_seed"]
        random.seed(seed)
        try:
            import numpy

            numpy.random.seed(seed % 2**32)
        except Exception:
            pass
        from ..harness.runner import resolve_target

        telemetry = None
        if (payload.get("audit") or payload.get("timewin_path")
                or payload.get("flight_path")):
            from ..obs.telemetry import Telemetry

            telemetry = Telemetry(enabled=True)
            if payload.get("audit"):
                telemetry.enable_audit()
            if payload.get("timewin_path"):
                telemetry.enable_time_windows(**(payload.get("timewin") or {}))
            if payload.get("flight_path"):
                telemetry.enable_flight_recording(payload["flight_path"])
        builder = resolve_target(payload["builder"])
        partition = payload["partition"]
        with contextlib.ExitStack() as stack:
            if telemetry is not None:
                stack.enter_context(telemetry.activate())
            if payload.get("faults"):
                from ..faults.injector import activate_fault_plan
                from ..faults.plan import FaultPlan

                stack.enter_context(
                    activate_fault_plan(FaultPlan.from_dict(payload["faults"]))
                )
            runtime, finalize = builder(
                partition=partition,
                shards=payload["shards"],
                **payload["kwargs"],
            )
            if runtime.lookahead != payload["lookahead"]:
                raise ShardError(
                    f"worker lookahead {runtime.lookahead} disagrees with "
                    f"coordinator {payload['lookahead']}"
                )
            t0 = time.perf_counter()
            tracker = (
                HeartbeatTracker(partition)
                if payload.get("heartbeat") else None
            )
            schedule = barrier_times(payload["duration"], payload["lookahead"])
            for epoch, barrier in enumerate(schedule):
                out = runtime.run_epoch(barrier)
                if tracker is not None:
                    conn.send(("hb", epoch, tracker.frame(runtime, epoch, barrier)))
                conn.send(("out", epoch, [
                    (dest, batch)
                    for dest, batch in enumerate(out)
                    if dest != partition and len(batch)
                ]))
                wait_t0 = time.perf_counter()
                tag, got_epoch, inbound = conn.recv()
                if tracker is not None:
                    tracker.barrier_wait_s += time.perf_counter() - wait_t0
                if tag != "in" or got_epoch != epoch:
                    raise ShardError(
                        f"worker {partition} desynchronized: expected in/"
                        f"{epoch}, got {tag}/{got_epoch}"
                    )
                batches = list(inbound)
                local = out[partition]
                if len(local):
                    batches.append(local)
                runtime.apply_inbound(batches)
            result = finalize()
        report["wall_s"] = time.perf_counter() - t0
        report["status"] = "ok"
        report["result"] = result
        report["exported_packets"] = runtime.exported_packets
        report["imported_packets"] = runtime.imported_packets
        report["events"] = runtime.sim.events_processed
        if telemetry is not None:
            telemetry.close()
            if telemetry.timewin is not None and payload.get("timewin_path"):
                telemetry.timewin.dump_jsonl(payload["timewin_path"])
                report["timewin"] = telemetry.timewin.stats()
            if telemetry.flightrec is not None and payload.get("flight_path"):
                index = telemetry.flightrec.index
                report["flight_path"] = payload["flight_path"]
                report["flights"] = {
                    "total": index.total,
                    "delivered": index.delivered,
                    "dropped": index.dropped,
                    "unfinished": index.unfinished,
                    "exported": index.exported,
                }
            if telemetry.auditor is not None:
                verdict = telemetry.auditor.report()
                report["audit"] = {
                    "events_seen": verdict["events_seen"],
                    "violation_count": verdict["violation_count"],
                    "violations": verdict["violations"][:20],
                }
            report["metrics"] = telemetry.metrics.snapshot()
    except BaseException:
        report["error"] = traceback.format_exc(limit=20)
    try:
        conn.send(("done", report))
    finally:
        conn.close()


@dataclass
class ShardRunReport:
    """Outcome of one :func:`run_sharded` coordinator round."""

    shards: int
    epochs: int
    wall_s: float
    #: Per-partition worker reports (``status``, ``result``, ``audit``,
    #: ``timewin``, ``exported_packets`` ...), in partition order.
    workers: List[dict] = field(default_factory=list)
    #: Health frames streamed by workers, in arrival order (empty unless
    #: ``heartbeat=True``).
    heartbeats: List[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(w.get("status") == "ok" for w in self.workers)

    def results(self) -> List[dict]:
        return [w.get("result") or {} for w in self.workers]


def run_sharded(
    builder: str,
    kwargs: dict,
    shards: int,
    duration: float,
    lookahead: float,
    audit: bool = False,
    timewin_dir: Optional[str] = None,
    timewin_params: Optional[dict] = None,
    fault_plans: Optional[List[Optional[dict]]] = None,
    seed_base: str = "shard",
    timeout_s: float = 600.0,
    heartbeat: bool = False,
    flight_dir: Optional[str] = None,
    on_heartbeat: Optional[Callable[[dict], None]] = None,
) -> ShardRunReport:
    """Run ``builder`` (a ``"module:function"`` worker target, same
    convention as :class:`~repro.harness.runner.JobSpec`) across
    ``shards`` spawn-isolated workers in lockstep.

    The coordinator is a pure message router: it collects every
    partition's epoch batches (in *any* completion order), regroups them
    by destination, and releases the next epoch only when all workers
    have reached the barrier. Ordering determinism lives entirely in
    :meth:`ShardRuntime.apply_inbound`.

    ``heartbeat=True`` makes each worker stream one health frame per
    epoch (see :class:`HeartbeatTracker`) interleaved with its batches;
    frames are collected on the report and, when ``on_heartbeat`` is
    given, forwarded live as they arrive. ``flight_dir`` enables per-
    shard flight recording to ``shard{i}.flights.jsonl`` files.
    """
    import os

    if shards < 1:
        raise ConfigurationError(f"shards must be >= 1, got {shards}")
    if timewin_dir is not None:
        os.makedirs(timewin_dir, exist_ok=True)
    if flight_dir is not None:
        os.makedirs(flight_dir, exist_ok=True)
    from ..harness.runner import spawn_safe_main

    ctx = multiprocessing.get_context("spawn")
    conns = []
    procs = []
    schedule = barrier_times(duration, lookahead)
    t0 = time.perf_counter()
    with spawn_safe_main():
        for i in range(shards):
            parent, child = ctx.Pipe(duplex=True)
            payload = {
                "partition": i,
                "shards": shards,
                "builder": builder,
                "kwargs": dict(kwargs),
                "worker_seed": shard_worker_seed(seed_base, i),
                "duration": duration,
                "lookahead": lookahead,
                "audit": audit,
                "timewin": timewin_params,
                "timewin_path": (
                    os.path.join(timewin_dir, f"shard{i}.windows.jsonl")
                    if timewin_dir is not None
                    else None
                ),
                "flight_path": (
                    os.path.join(flight_dir, f"shard{i}.flights.jsonl")
                    if flight_dir is not None
                    else None
                ),
                "heartbeat": heartbeat,
                "faults": fault_plans[i] if fault_plans else None,
            }
            proc = ctx.Process(
                target=_shard_worker_main, args=(payload, child), daemon=True
            )
            proc.start()
            child.close()
            conns.append(parent)
            procs.append(proc)

    reports: List[Optional[dict]] = [None] * shards
    heartbeats: List[dict] = []
    conn_index = {id(conn): i for i, conn in enumerate(conns)}

    def fail(message: str) -> None:
        """Raise a :class:`ShardError` carrying the per-worker reports
        gathered so far (including a failed worker's traceback), so the
        run-ledger failure path can index them in the manifest."""
        err = ShardError(message)
        err.worker_reports = [r for r in reports if r is not None]
        raise err

    def recv_from(pending: set, expect_tag: str, epoch: int) -> dict:
        """Collect one message per pending worker; returns index->payload."""
        gathered: Dict[int, list] = {}
        while pending:
            ready = multiprocessing.connection.wait(
                [conns[i] for i in pending], timeout=timeout_s
            )
            if not ready:
                fail(
                    f"shard barrier timed out after {timeout_s}s at epoch "
                    f"{epoch} waiting on partitions {sorted(pending)}"
                )
            for conn in ready:
                i = conn_index[id(conn)]
                try:
                    message = conn.recv()
                except EOFError:
                    reports[i] = reports[i] or {
                        "partition": i, "status": "failed",
                        "error": f"worker process died "
                                 f"(exit code {procs[i].exitcode})",
                    }
                    fail(
                        f"shard worker {i} died at epoch {epoch} "
                        f"(exit code {procs[i].exitcode})"
                    )
                if message[0] == "hb":
                    # Health frame riding ahead of the worker's batches;
                    # record it and keep the worker pending for its "out".
                    heartbeats.append(message[2])
                    if on_heartbeat is not None:
                        on_heartbeat(message[2])
                    continue
                if message[0] == "done":
                    # A failed worker reports early instead of deadlocking
                    # the barrier; surface its traceback here.
                    body = message[1]
                    reports[i] = body
                    if body.get("status") != "ok":
                        fail(
                            f"shard worker {i} failed:\n"
                            f"{body.get('error', '(no traceback)')}"
                        )
                    pending.discard(i)
                    gathered[i] = []
                    continue
                tag, got, body = message
                if tag != expect_tag or got != epoch:
                    fail(
                        f"worker {i} desynchronized: expected "
                        f"{expect_tag}/{epoch}, got {tag}/{got}"
                    )
                gathered[i] = body
                pending.discard(i)
        return gathered

    try:
        for epoch in range(len(schedule)):
            gathered = recv_from(set(range(shards)), "out", epoch)
            inbound: List[List[BoundaryBatch]] = [[] for _ in range(shards)]
            # Visit sources in partition order; apply_inbound re-sorts
            # anyway, so this is cosmetic — the canonical order is the
            # row key, not the batch order.
            for i in sorted(gathered):
                for dest, batch in gathered[i]:
                    inbound[dest].append(batch)
            for j in range(shards):
                conns[j].send(("in", epoch, inbound[j]))
        # Final reports (workers that already sent "done" are recorded).
        remaining = {i for i in range(shards) if reports[i] is None}
        while remaining:
            ready = multiprocessing.connection.wait(
                [conns[i] for i in remaining], timeout=timeout_s
            )
            if not ready:
                fail(
                    f"timed out waiting for final reports from "
                    f"{sorted(remaining)}"
                )
            for conn in ready:
                i = conn_index[id(conn)]
                try:
                    tag, body = conn.recv()
                except EOFError:
                    reports[i] = {
                        "partition": i, "status": "failed",
                        "error": f"worker process died before reporting "
                                 f"(exit code {procs[i].exitcode})",
                    }
                    fail(
                        f"shard worker {i} died before reporting "
                        f"(exit code {procs[i].exitcode})"
                    )
                if tag != "done":
                    fail(
                        f"worker {i} sent {tag!r} after the last barrier"
                    )
                reports[i] = body
                remaining.discard(i)
    finally:
        for conn in conns:
            conn.close()
        for proc in procs:
            proc.join(timeout=10.0)
            if proc.is_alive():  # pragma: no cover - cleanup of hung worker
                proc.terminate()
                proc.join(timeout=5.0)

    for i, report in enumerate(reports):
        if report is None:
            fail(f"shard worker {i} never reported")
        if report.get("status") != "ok":
            fail(
                f"shard worker {i} failed:\n{report.get('error', '')}"
            )
    return ShardRunReport(
        shards=shards,
        epochs=len(schedule),
        wall_s=time.perf_counter() - t0,
        workers=[r for r in reports if r is not None],
        heartbeats=heartbeats,
    )
