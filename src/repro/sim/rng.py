"""Seeded random-number streams.

Each component that needs randomness asks the registry for a *named stream*,
derived deterministically from the root seed and the stream name. This keeps
scenarios reproducible even when components are constructed in different
orders (the classic pitfall of sharing one global ``random.Random``).
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def _derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``(root_seed, name)`` via SHA-256."""
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """A factory of independent, reproducible :class:`random.Random` streams."""

    def __init__(self, root_seed: int = 0) -> None:
        self._root_seed = root_seed
        self._streams: Dict[str, random.Random] = {}

    @property
    def root_seed(self) -> int:
        return self._root_seed

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        Repeated calls with the same name return the *same* generator object,
        so a component can hold or re-fetch its stream interchangeably.
        """
        generator = self._streams.get(name)
        if generator is None:
            generator = random.Random(_derive_seed(self._root_seed, name))
            self._streams[name] = generator
        return generator

    def fork(self, name: str) -> "RngRegistry":
        """A child registry whose streams are independent of the parent's."""
        return RngRegistry(_derive_seed(self._root_seed, f"fork:{name}"))
