"""Workload generation: Poisson flow arrivals over arbitrary traffic matrices.

The paper's traffic pattern is "arbitrary": any source host may send to any
destination host, with flows arriving over time and sizes drawn from the
web-search distribution. :class:`EntityWorkload` produces the flow
descriptors for one entity (one application / CC aggregate / VM), either as

* a *fixed-volume* batch (completion-time experiments, Figures 6, 7, 10):
  flows totalling ``total_bytes`` with Poisson-spread start times, or
* an *open-loop* arrival process at a target load (throughput experiments).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from .websearch import FlowSizeDistribution, websearch_distribution


@dataclass(frozen=True)
class FlowSpec:
    """One flow to be instantiated by the harness."""

    src: str
    dst: str
    size_bytes: int
    start_time: float


@dataclass
class EntityWorkload:
    """Flow-level workload description for one entity."""

    name: str
    sources: Sequence[str]
    destinations: Sequence[str]
    distribution: FlowSizeDistribution = field(default_factory=websearch_distribution)

    def __post_init__(self) -> None:
        if not self.sources or not self.destinations:
            raise ConfigurationError(
                f"entity {self.name}: needs at least one source and destination"
            )

    def _pick_pair(self, rng: random.Random) -> Tuple[str, str]:
        src = rng.choice(list(self.sources))
        choices = [d for d in self.destinations if d != src]
        if not choices:
            raise ConfigurationError(
                f"entity {self.name}: no destination different from source {src}"
            )
        dst = rng.choice(choices)
        return src, dst

    def fixed_volume(
        self,
        rng: random.Random,
        total_bytes: int,
        arrival_window: float,
        start_time: float = 0.0,
    ) -> List[FlowSpec]:
        """Flows summing to ``total_bytes``, starting uniformly at random
        inside ``[start_time, start_time + arrival_window)``.

        This is the completion-time workload: the entity finishes when all
        of these flows finish, and the runtime traffic matrix keeps
        shifting because each flow picks a fresh (src, dst) pair.
        """
        if total_bytes <= 0:
            raise ConfigurationError(f"total_bytes must be positive, got {total_bytes}")
        flows: List[FlowSpec] = []
        remaining = total_bytes
        while remaining > 0:
            size = min(self.distribution.sample_bytes(rng), remaining)
            src, dst = self._pick_pair(rng)
            offset = rng.random() * arrival_window
            flows.append(FlowSpec(src, dst, size, start_time + offset))
            remaining -= size
        flows.sort(key=lambda f: f.start_time)
        return flows

    def vm_job_queues(
        self,
        rng: random.Random,
        total_bytes: int,
        arrival_window: float = 0.0,
        start_time: float = 0.0,
    ) -> dict:
        """Per-VM FIFO job queues summing to ``total_bytes``.

        This is the completion-time workload model behind the paper's
        Figures 6, 7 and 10: flows *arrive* at the entity's VMs over
        ``arrival_window`` (Poisson process — realized as uniform order
        statistics — on a uniformly random VM), and each VM executes its
        queued flows **one at a time, in arrival order** (a flow starts at
        the later of its arrival and the VM finishing the previous one).

        Two properties of this model drive the paper's comparisons:

        * an entity's concurrent flow count tracks its *busy VM* count, so
          flow-level fair sharing (PQ) rewards VM-rich entities, and
        * VMs have idle gaps whenever arrivals lag service, so a fixed
          per-VM rate slice (PRL) wastes the idle VM's bandwidth while
          busy VMs starve — the runtime demand/allocation mismatch of
          Section 5.2.

        ``arrival_window == 0`` degenerates to a fully backlogged
        closed loop. Returns ``{src_vm: [FlowSpec, ...]}`` with arrival
        times in the ``start_time`` field, sorted per VM.
        """
        if total_bytes <= 0:
            raise ConfigurationError(f"total_bytes must be positive, got {total_bytes}")
        if arrival_window < 0:
            raise ConfigurationError(
                f"arrival_window must be >= 0, got {arrival_window}"
            )
        queues: dict = {src: [] for src in self.sources}
        remaining = total_bytes
        while remaining > 0:
            size = min(self.distribution.sample_bytes(rng), remaining)
            src, dst = self._pick_pair(rng)
            arrival = start_time + rng.random() * arrival_window
            queues[src].append(FlowSpec(src, dst, size, arrival))
            remaining -= size
        for flows in queues.values():
            flows.sort(key=lambda f: f.start_time)
        return queues

    def poisson_open_loop(
        self,
        rng: random.Random,
        load_bps: float,
        duration: float,
        start_time: float = 0.0,
        mean_bytes: Optional[float] = None,
    ) -> List[FlowSpec]:
        """Open-loop Poisson arrivals at average offered load ``load_bps``."""
        if load_bps <= 0 or duration <= 0:
            raise ConfigurationError("load and duration must be positive")
        mean = mean_bytes if mean_bytes is not None else self.distribution.mean_bytes()
        arrival_rate = load_bps / (mean * 8.0)  # flows per second
        flows: List[FlowSpec] = []
        t = start_time
        end = start_time + duration
        while True:
            t += rng.expovariate(arrival_rate)
            if t >= end:
                break
            src, dst = self._pick_pair(rng)
            flows.append(FlowSpec(src, dst, self.distribution.sample_bytes(rng), t))
        return flows
