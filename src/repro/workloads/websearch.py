"""Web-search flow-size distribution (paper Section 5.1 workload).

The paper drives every macro experiment with "a web search workload trace
that consists of a diverse mix of small and large TCP flows" [DCTCP].
Without the production trace we sample from a piecewise log-linear CDF
that approximates the published DCTCP web-search distribution: mostly
small (few-packet) flows with a heavy tail of multi-megabyte flows.

The default table moderates the extreme tail (2 MB max instead of 30 MB)
so packet-level simulations finish in reasonable wall time; all paper
quantities reproduced from it are ratios, which the moderation preserves
(see DESIGN.md, substitutions).
"""

from __future__ import annotations

import bisect
import math
import random
from typing import List, Sequence, Tuple

from ..errors import ConfigurationError
from ..units import MSS_BYTES

#: (flow size in MSS-sized packets, cumulative probability).
WEBSEARCH_CDF_PACKETS: List[Tuple[float, float]] = [
    (1, 0.00),
    (2, 0.10),
    (3, 0.20),
    (5, 0.30),
    (7, 0.40),
    (10, 0.53),
    (15, 0.60),
    (30, 0.70),
    (50, 0.80),
    (70, 0.90),
    (100, 0.95),
    (200, 0.98),
    (400, 0.99),
    (700, 0.995),
    (1000, 0.998),
    (1400, 1.00),
]


class FlowSizeDistribution:
    """Inverse-CDF sampler over a piecewise log-linear size distribution."""

    def __init__(
        self,
        cdf_packets: Sequence[Tuple[float, float]] = tuple(WEBSEARCH_CDF_PACKETS),
        mss_bytes: int = MSS_BYTES,
    ) -> None:
        if len(cdf_packets) < 2:
            raise ConfigurationError("CDF needs at least two points")
        probs = [p for _, p in cdf_packets]
        sizes = [s for s, _ in cdf_packets]
        if probs != sorted(probs) or probs[0] != 0.0 or probs[-1] != 1.0:
            raise ConfigurationError("CDF probabilities must rise from 0 to 1")
        if sizes != sorted(sizes) or sizes[0] <= 0:
            raise ConfigurationError("CDF sizes must be positive and increasing")
        self._sizes = sizes
        self._probs = probs
        self.mss_bytes = mss_bytes

    def sample_packets(self, rng: random.Random) -> int:
        """Draw a flow size in packets."""
        u = rng.random()
        index = bisect.bisect_right(self._probs, u)
        if index >= len(self._probs):
            return int(round(self._sizes[-1]))
        lo_p, hi_p = self._probs[index - 1], self._probs[index]
        lo_s, hi_s = self._sizes[index - 1], self._sizes[index]
        if hi_p == lo_p:
            return int(round(hi_s))
        frac = (u - lo_p) / (hi_p - lo_p)
        # Log-linear interpolation keeps the tail heavy.
        size = math.exp(
            math.log(lo_s) + frac * (math.log(hi_s) - math.log(lo_s))
        )
        return max(1, int(round(size)))

    def sample_bytes(self, rng: random.Random) -> int:
        """Draw a flow size in bytes."""
        return self.sample_packets(rng) * self.mss_bytes

    def mean_bytes(self, samples: int = 20000, seed: int = 7) -> float:
        """Monte-Carlo estimate of the mean flow size (used to convert a
        target load into a Poisson arrival rate)."""
        rng = random.Random(seed)
        total = sum(self.sample_bytes(rng) for _ in range(samples))
        return total / samples


def websearch_distribution() -> FlowSizeDistribution:
    """The default web-search distribution instance."""
    return FlowSizeDistribution()
