"""Incast (partition-aggregate) workload.

The classic datacenter pattern behind DCTCP's motivation: an aggregator
fans a request out to N workers, all of whom answer *simultaneously* with
equal-sized responses toward the single aggregator — a synchronized burst
that hammers one downlink queue. Rounds repeat with a configurable think
time.

Used by tests/extensions to study how AQ interacts with synchronized
bursts: the per-entity A-Gap absorbs a burst up to the AQ limit exactly
like a dedicated queue would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..errors import ConfigurationError
from ..stats.meters import percentile
from ..transport.tcp import TcpConnection


@dataclass
class IncastRound:
    """Completion record of one fan-in round."""

    start_time: float
    finish_time: float

    @property
    def duration(self) -> float:
        return self.finish_time - self.start_time


class IncastApplication:
    """Repeated synchronized fan-in from ``workers`` to ``aggregator``."""

    def __init__(
        self,
        network,
        aggregator: str,
        workers: Sequence[str],
        response_bytes: int,
        cc_factory: Callable[[], object],
        rounds: int = 1,
        think_time: float = 1e-3,
        start_time: float = 0.0,
        aq_ingress_id: int = 0,
        aq_egress_id: int = 0,
        on_round_complete: Optional[Callable[[IncastRound], None]] = None,
    ) -> None:
        if not workers:
            raise ConfigurationError("incast needs at least one worker")
        if response_bytes <= 0 or rounds < 1:
            raise ConfigurationError("response size and rounds must be positive")
        self.network = network
        self.aggregator = aggregator
        self.workers = list(workers)
        self.response_bytes = response_bytes
        self.cc_factory = cc_factory
        self.rounds_remaining = rounds
        self.think_time = think_time
        self.aq_ingress_id = aq_ingress_id
        self.aq_egress_id = aq_egress_id
        self.on_round_complete = on_round_complete
        self.completed_rounds: List[IncastRound] = []
        self._pending = 0
        self._round_start = 0.0
        network.sim.schedule_at(start_time, self._start_round)

    def _start_round(self) -> None:
        self._round_start = self.network.sim.now
        self._pending = len(self.workers)
        for worker in self.workers:
            TcpConnection(
                self.network,
                worker,
                self.aggregator,
                self.cc_factory(),
                size_bytes=self.response_bytes,
                start_time=self.network.sim.now,
                aq_ingress_id=self.aq_ingress_id,
                aq_egress_id=self.aq_egress_id,
                on_complete=self._on_flow_done,
            )

    def _on_flow_done(self, conn, now: float) -> None:
        self._pending -= 1
        if self._pending > 0:
            return
        record = IncastRound(self._round_start, now)
        self.completed_rounds.append(record)
        if self.on_round_complete is not None:
            self.on_round_complete(record)
        self.rounds_remaining -= 1
        if self.rounds_remaining > 0:
            self.network.sim.schedule(self.think_time, self._start_round)

    # -- summaries -----------------------------------------------------------------

    @property
    def all_done(self) -> bool:
        return self.rounds_remaining == 0 and self._pending == 0

    def round_duration_percentile(self, pct: float) -> float:
        if not self.completed_rounds:
            raise ConfigurationError("no rounds completed yet")
        return percentile([r.duration for r in self.completed_rounds], pct)
