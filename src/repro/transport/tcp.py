"""Packet-level TCP with pluggable congestion control.

The model is deliberately classical so CC dynamics — not transport quirks —
dominate the experiments, matching the paper's NS3 setup:

* cumulative ACK per data packet (no delayed ACKs),
* per-packet ECN echo (the receiver mirrors each data packet's CE bit onto
  its ACK, as DCTCP requires),
* triple-duplicate-ACK fast retransmit with NewReno partial-ACK recovery,
* RTO with exponential backoff and go-back-N,
* Karn's rule for RTT sampling, SRTT/RTTVAR per RFC 6298,
* sub-packet windows (Swift) are honoured by pacing one packet per
  ``rtt / cwnd``,
* data packets carry the flow's AQ ID header fields; receivers echo the
  accumulated virtual queuing delay back to the sender for delay-based CC.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..cc.base import AckContext, CongestionControl
from ..errors import TransportError
from ..net.host import Host
from ..net.packet import Packet, make_ack, make_data
from ..obs.events import EV_CWND_CHANGE
from ..units import ACK_BYTES, MSS_BYTES, SECOND, ms

#: RFC 6298 parameters, scaled for data center RTTs. Both RTO bounds go
#: through the units helpers so they are explicitly in seconds.
RTO_ALPHA = 1.0 / 8.0
RTO_BETA = 1.0 / 4.0
DEFAULT_MIN_RTO = ms(1)
MAX_RTO = 1 * SECOND
DUP_ACK_THRESHOLD = 3


class TcpSenderStats:
    """Counters for one sender."""

    __slots__ = (
        "segments_sent",
        "bytes_sent",
        "retransmissions",
        "timeouts",
        "fast_retransmits",
        "start_time",
        "finish_time",
    )

    def __init__(self) -> None:
        self.segments_sent = 0
        self.bytes_sent = 0
        self.retransmissions = 0
        self.timeouts = 0
        self.fast_retransmits = 0
        self.start_time = -1.0
        self.finish_time = -1.0

    @property
    def completion_time(self) -> float:
        if self.finish_time < 0 or self.start_time < 0:
            return -1.0
        return self.finish_time - self.start_time


class _Segment:
    __slots__ = ("size", "sent_time", "retransmitted")

    def __init__(self, size: int, sent_time: float) -> None:
        self.size = size
        self.sent_time = sent_time
        self.retransmitted = False


class TcpSender:
    """The sending half of a TCP connection."""

    def __init__(
        self,
        sim,
        host: Host,
        dst: str,
        flow_id: int,
        cc: CongestionControl,
        size_bytes: Optional[int] = None,
        mss: int = MSS_BYTES,
        start_time: float = 0.0,
        min_rto: float = DEFAULT_MIN_RTO,
        aq_ingress_id: int = 0,
        aq_egress_id: int = 0,
        on_complete: Optional[Callable[["TcpSender", float], None]] = None,
    ) -> None:
        if size_bytes is not None and size_bytes <= 0:
            raise TransportError(f"flow size must be positive, got {size_bytes}")
        self.sim = sim
        self.host = host
        self.dst = dst
        self.flow_id = flow_id
        self.cc = cc
        self.size_bytes = size_bytes
        self.mss = mss
        self.min_rto = min_rto
        self.aq_ingress_id = aq_ingress_id
        self.aq_egress_id = aq_egress_id
        self.on_complete = on_complete
        self.stats = TcpSenderStats()

        self.snd_una = 0
        self.snd_nxt = 0
        self._inflight: Dict[int, _Segment] = {}
        self._inflight_bytes = 0
        self._dup_acks = 0
        self._in_recovery = False
        self._recover_seq = 0

        self._srtt = -1.0
        self._rttvar = 0.0
        self._rto = 10 * min_rto
        self._rto_backed_off = False
        self._max_seq_sent = 0
        self._base_rtt = float("inf")
        self._rto_event = None
        self._pace_event = None
        self._next_send_time = 0.0
        self.completed = False

        tele = sim.telemetry
        self._tele = tele if tele is not None and tele.enabled else None
        self._flight = self._tele.flightrec if self._tele is not None else None
        self._last_reported_cwnd = cc.cwnd
        if self._tele is not None:
            self._tele.metrics.add_collector(self._collect_metrics)

        host.register_flow(flow_id, self)
        sim.schedule_at(start_time, self._start)

    def _collect_metrics(self, registry) -> None:
        stats = self.stats
        labels = {"flow_id": self.flow_id, "transport": "tcp"}
        registry.counter("tcp_segments_sent", **labels).set(stats.segments_sent)
        registry.counter("tcp_bytes_sent", **labels).set(stats.bytes_sent)
        registry.counter("tcp_retransmissions", **labels).set(stats.retransmissions)
        registry.counter("tcp_timeouts", **labels).set(stats.timeouts)
        registry.counter("tcp_fast_retransmits", **labels).set(
            stats.fast_retransmits
        )
        registry.gauge("tcp_cwnd_packets", **labels).set(self.cc.cwnd)
        if self._srtt > 0:
            registry.gauge("tcp_srtt_s", **labels).set(self._srtt)

    def _trace_cwnd(self, now: float) -> None:
        """Emit ``cwnd_change`` when a CC callback moved the window."""
        cwnd = self.cc.cwnd
        if cwnd != self._last_reported_cwnd:
            self._last_reported_cwnd = cwnd
            self._tele.trace.emit_fields(
                EV_CWND_CHANGE, now, node="tcp", flow_id=self.flow_id,
                value=float(cwnd),
            )

    # -- lifecycle ------------------------------------------------------------

    def _start(self) -> None:
        self.stats.start_time = self.sim.now
        self._try_send()

    def stop(self) -> None:
        """Tear the sender down (entity leaving the network, Fig 9 style)."""
        if not self.completed:
            self._complete()

    def _complete(self) -> None:
        self.completed = True
        self.stats.finish_time = self.sim.now
        self._cancel_rto()
        if self._pace_event is not None:
            self._pace_event.cancel()
            self._pace_event = None
        if self.on_complete is not None:
            self.on_complete(self, self.sim.now)

    # -- sending -----------------------------------------------------------------

    def _remaining(self) -> Optional[int]:
        if self.size_bytes is None:
            return None
        return self.size_bytes - self.snd_nxt

    def _window_bytes(self) -> float:
        return self.cc.cwnd * self.mss

    def _try_send(self) -> None:
        if self.completed:
            return
        now = self.sim.now
        while True:
            remaining = self._remaining()
            if remaining is not None and remaining <= 0:
                break
            seg_size = self.mss if remaining is None else min(self.mss, remaining)
            window = self._window_bytes()
            if self._inflight_bytes + seg_size > window:
                # Sub-packet windows: pace a single packet per rtt/cwnd when
                # nothing is in flight (Swift may push cwnd below 1).
                if self._inflight_bytes == 0 and self.cc.cwnd > 0:
                    if now >= self._next_send_time:
                        self._send_segment(self.snd_nxt, seg_size)
                        rtt = self._srtt if self._srtt > 0 else self._rto
                        self._next_send_time = now + rtt / self.cc.cwnd
                    else:
                        self._schedule_pace(self._next_send_time)
                break
            self._send_segment(self.snd_nxt, seg_size)

    def _schedule_pace(self, at_time: float) -> None:
        if self._pace_event is not None:
            return
        def fire() -> None:
            self._pace_event = None
            self._try_send()
        self._pace_event = self.sim.schedule_at(at_time, fire)

    def _send_segment(self, seq: int, seg_size: int, retransmission: bool = False) -> None:
        now = self.sim.now
        # Any byte below the high-water mark has been on the wire before:
        # post-RTO go-back-N resends come through _try_send without the
        # retransmission flag, and the stats must still count them.
        rewired = seq < self._max_seq_sent
        is_last = self.size_bytes is not None and seq + seg_size >= self.size_bytes
        packet = make_data(
            self.host.name,
            self.dst,
            self.flow_id,
            seq,
            seg_size,
            ect=self.cc.ecn_capable,
            fin=is_last,
            retransmission=retransmission,
        )
        packet.aq_ingress_id = self.aq_ingress_id
        packet.aq_egress_id = self.aq_egress_id
        packet.sent_time = now
        segment = self._inflight.get(seq)
        if segment is None:
            segment = _Segment(seg_size, now)
            self._inflight[seq] = segment
            self._inflight_bytes += seg_size
            if seq == self.snd_nxt:
                self.snd_nxt = seq + seg_size
        else:
            segment.retransmitted = True
            segment.sent_time = now
        if seq + seg_size > self._max_seq_sent:
            self._max_seq_sent = seq + seg_size
        if retransmission or rewired:
            self.stats.retransmissions += 1
        self.stats.segments_sent += 1
        self.stats.bytes_sent += seg_size
        self.host.send(packet)
        self._arm_rto()

    # -- receiving ACKs ------------------------------------------------------------

    def on_packet(self, packet: Packet, now: float) -> None:
        if not packet.is_ack or self.completed:
            return
        if packet.flight_digest is not None and self._flight is not None:
            # The receiver echoed a flight digest on this ACK (the in-band
            # telemetry round trip); index it for per-flow path queries.
            self._flight.note_echo(self.flow_id, packet.flight_digest, now)
        ack = packet.ack
        if ack > self.snd_una:
            self._on_new_ack(packet, ack, now)
        elif ack == self.snd_una and self._inflight:
            self._on_dup_ack(now)

    def _on_new_ack(self, packet: Packet, ack: int, now: float) -> None:
        acked_bytes = 0
        acked_packets = 0
        rtt_sample = -1.0
        for seq in list(self._inflight):
            if seq >= ack:
                break
            segment = self._inflight.pop(seq)
            self._inflight_bytes -= segment.size
            acked_bytes += segment.size
            acked_packets += 1
            if not segment.retransmitted:
                rtt_sample = now - segment.sent_time
        self.snd_una = ack
        self._dup_acks = 0
        if rtt_sample > 0:
            self._update_rtt(rtt_sample)
            # The fresh sample re-derived the RTO from live srtt/rttvar —
            # the RFC 6298 §5.7 backoff collapse. An ACK that covers only
            # flagged retransmissions yields no sample (Karn's rule keeps
            # them out of the estimator), so the backed-off RTO stays in
            # place until the path proves itself with a clean round trip.
            self._rto_backed_off = False

        if self._in_recovery:
            if ack >= self._recover_seq:
                self._in_recovery = False
            else:
                # NewReno partial ACK: retransmit the next hole immediately.
                self._retransmit_hole(ack)

        if acked_packets > 0:
            ctx = AckContext(
                now=now,
                acked_packets=acked_packets,
                acked_bytes=acked_bytes,
                rtt_sample=rtt_sample,
                base_rtt=self._base_rtt if self._base_rtt < float("inf") else 0.0,
                ece=packet.ece,
                virtual_delay=packet.echo_virtual_delay,
                snd_una=self.snd_una,
                flightsize_packets=len(self._inflight),
            )
            self.cc.on_ack(ctx)
            if self._tele is not None and self._tele.enabled:
                self._trace_cwnd(now)

        if self.size_bytes is not None and self.snd_una >= self.size_bytes:
            self._complete()
            return
        if self._inflight:
            self._arm_rto(restart=True)
        else:
            self._cancel_rto()
        self._try_send()

    def _on_dup_ack(self, now: float) -> None:
        self._dup_acks += 1
        if self._dup_acks == DUP_ACK_THRESHOLD and not self._in_recovery:
            self._in_recovery = True
            self._recover_seq = self.snd_nxt
            self.stats.fast_retransmits += 1
            self.cc.on_packet_loss(now)
            if self._tele is not None and self._tele.enabled:
                self._trace_cwnd(now)
            self._retransmit_hole(self.snd_una)

    def _retransmit_hole(self, seq: int) -> None:
        segment = self._inflight.get(seq)
        if segment is None:
            return
        self._send_segment(seq, segment.size, retransmission=True)

    # -- timers -------------------------------------------------------------------

    def _update_rtt(self, sample: float) -> None:
        if sample < self._base_rtt:
            self._base_rtt = sample
        if self._srtt < 0:
            self._srtt = sample
            self._rttvar = sample / 2.0
        else:
            self._rttvar = (1 - RTO_BETA) * self._rttvar + RTO_BETA * abs(
                self._srtt - sample
            )
            self._srtt = (1 - RTO_ALPHA) * self._srtt + RTO_ALPHA * sample
        self._rto = min(MAX_RTO, max(self.min_rto, self._srtt + 4 * self._rttvar))

    def _arm_rto(self, restart: bool = False) -> None:
        if self._rto_event is not None:
            if not restart:
                return
            self._rto_event.cancel()
        self._rto_event = self.sim.schedule(self._rto, self._on_rto)

    def _cancel_rto(self) -> None:
        if self._rto_event is not None:
            self._rto_event.cancel()
            self._rto_event = None

    def _on_rto(self) -> None:
        self._rto_event = None
        if self.completed or not self._inflight:
            return
        self.stats.timeouts += 1
        self.cc.on_rto(self.sim.now)
        if self._tele is not None and self._tele.enabled:
            self._trace_cwnd(self.sim.now)
        # Go-back-N: forget everything in flight and restart from snd_una.
        self._inflight.clear()
        self._inflight_bytes = 0
        self.snd_nxt = self.snd_una
        self._dup_acks = 0
        self._in_recovery = False
        self._rto = min(MAX_RTO, self._rto * 2)
        self._rto_backed_off = True
        self._try_send()

    # -- introspection --------------------------------------------------------------

    @property
    def srtt(self) -> float:
        return self._srtt

    @property
    def base_rtt(self) -> float:
        return self._base_rtt

    @property
    def inflight_bytes(self) -> int:
        return self._inflight_bytes


class TcpReceiver:
    """The receiving half: cumulative ACKs, per-packet ECN/delay echo.

    ``ack_every=1`` (the default) acknowledges each data packet, which is
    what DCTCP-style per-packet ECN echo assumes. ``ack_every>1`` enables
    delayed ACKs: one cumulative ACK per N in-order packets or after
    ``ack_delay``, with immediate ACKs forced for out-of-order arrivals
    (dup-ACK generation), CE-marked packets (timely congestion echo), and
    FINs.
    """

    def __init__(
        self,
        sim,
        host: Host,
        src: str,
        flow_id: int,
        ack_size: int = ACK_BYTES,
        on_deliver: Optional[Callable[[int, float], None]] = None,
        ack_every: int = 1,
        ack_delay: float = 200e-6,
    ) -> None:
        if ack_every < 1:
            raise TransportError(f"ack_every must be >= 1, got {ack_every}")
        self.sim = sim
        self.host = host
        self.src = src
        self.flow_id = flow_id
        self.ack_size = ack_size
        self.on_deliver = on_deliver
        self.ack_every = ack_every
        self.ack_delay = ack_delay
        self.rcv_nxt = 0
        self._out_of_order: Dict[int, int] = {}
        self.delivered_bytes = 0
        self.fin_received = False
        self.acks_sent = 0
        self._unacked = 0
        self._pending_ece = False
        self._pending_virtual_delay = 0.0
        self._ack_timer = None
        tele = sim.telemetry
        self._flight = tele.flightrec if tele is not None and tele.enabled else None
        self._pending_flight_digest = None
        host.register_flow(flow_id, self)

    def on_packet(self, packet: Packet, now: float) -> None:
        if not packet.is_data:
            return
        advanced = 0
        out_of_order = False
        if packet.seq == self.rcv_nxt:
            self.rcv_nxt += packet.size
            advanced += packet.size
            while self.rcv_nxt in self._out_of_order:
                size = self._out_of_order.pop(self.rcv_nxt)
                self.rcv_nxt += size
                advanced += size
        elif packet.seq > self.rcv_nxt:
            self._out_of_order.setdefault(packet.seq, packet.size)
            out_of_order = True
        # else: duplicate of already-delivered data; still ACK it.
        if packet.fin and packet.seq + packet.size <= self.rcv_nxt:
            self.fin_received = True
        if advanced:
            self.delivered_bytes += advanced
            if self.on_deliver is not None:
                self.on_deliver(advanced, now)

        self._pending_ece = self._pending_ece or packet.ce
        if packet.virtual_delay > self._pending_virtual_delay:
            self._pending_virtual_delay = packet.virtual_delay
        fr = self._flight
        if fr is not None and packet.flight is not None:
            # The packet's in-band hop records are still attached here (the
            # host seals the flight after endpoint dispatch); summarize them
            # for the ACK echo, mirroring the ECN/virtual-delay echoes.
            digest = fr.digest_of(packet)
            if digest is not None:
                self._pending_flight_digest = digest
        self._unacked += 1
        must_ack_now = (
            self.ack_every == 1
            or out_of_order
            or packet.ce
            or packet.fin
            or self._unacked >= self.ack_every
        )
        if must_ack_now:
            self._send_ack()
        elif self._ack_timer is None:
            self._ack_timer = self.sim.schedule(self.ack_delay, self._send_ack)

    def _send_ack(self) -> None:
        if self._ack_timer is not None:
            self._ack_timer.cancel()
            self._ack_timer = None
        if self._unacked == 0:
            return
        ack = make_ack(
            self.host.name,
            self.src,
            self.flow_id,
            ack=self.rcv_nxt,
            size=self.ack_size,
            ece=self._pending_ece,
            echo_virtual_delay=self._pending_virtual_delay,
        )
        if self._pending_flight_digest is not None:
            ack.flight_digest = self._pending_flight_digest
            self._pending_flight_digest = None
        self._unacked = 0
        self._pending_ece = False
        self._pending_virtual_delay = 0.0
        self.acks_sent += 1
        self.host.send(ack)


class TcpConnection:
    """Sender + receiver pair for one flow; the unit workloads schedule."""

    def __init__(
        self,
        network,
        src: str,
        dst: str,
        cc: CongestionControl,
        size_bytes: Optional[int] = None,
        start_time: float = 0.0,
        flow_id: Optional[int] = None,
        aq_ingress_id: int = 0,
        aq_egress_id: int = 0,
        min_rto: float = DEFAULT_MIN_RTO,
        on_complete: Optional[Callable[["TcpConnection", float], None]] = None,
        on_deliver: Optional[Callable[[int, float], None]] = None,
        ack_every: int = 1,
    ) -> None:
        self.network = network
        self.flow_id = network.allocate_flow_id() if flow_id is None else flow_id
        self._user_on_complete = on_complete
        self.receiver = TcpReceiver(
            network.sim,
            network.hosts[dst],
            src,
            self.flow_id,
            on_deliver=on_deliver,
            ack_every=ack_every,
        )
        self.sender = TcpSender(
            network.sim,
            network.hosts[src],
            dst,
            self.flow_id,
            cc,
            size_bytes=size_bytes,
            start_time=start_time,
            min_rto=min_rto,
            aq_ingress_id=aq_ingress_id,
            aq_egress_id=aq_egress_id,
            on_complete=self._sender_complete,
        )

    def _sender_complete(self, sender: TcpSender, now: float) -> None:
        if self._user_on_complete is not None:
            self._user_on_complete(self, now)

    @property
    def completed(self) -> bool:
        return self.sender.completed

    @property
    def completion_time(self) -> float:
        return self.sender.stats.completion_time
