"""Constant-bit-rate UDP sender and counting sink.

The paper uses UDP entities as the worst-case aggressor: they blast at the
line rate with no feedback loop, starving TCP in shared physical queues
(Figure 9a) unless an AQ rate-limits them in the fabric (Figure 9b).
"""

from __future__ import annotations

from typing import Callable, Optional

from ..errors import TransportError
from ..net.host import Host
from ..net.packet import Packet, make_udp
from ..units import MTU_BYTES, transmission_time


class UdpSender:
    """Sends fixed-size datagrams at a fixed application rate."""

    def __init__(
        self,
        sim,
        host: Host,
        dst: str,
        flow_id: int,
        rate_bps: float,
        packet_size: int = MTU_BYTES,
        start_time: float = 0.0,
        stop_time: Optional[float] = None,
        total_bytes: Optional[int] = None,
        aq_ingress_id: int = 0,
        aq_egress_id: int = 0,
    ) -> None:
        if rate_bps <= 0:
            raise TransportError(f"UDP rate must be positive, got {rate_bps}")
        self.sim = sim
        self.host = host
        self.dst = dst
        self.flow_id = flow_id
        self.rate_bps = rate_bps
        self.packet_size = packet_size
        self.stop_time = stop_time
        self.total_bytes = total_bytes
        self.aq_ingress_id = aq_ingress_id
        self.aq_egress_id = aq_egress_id
        self.bytes_sent = 0
        self.packets_sent = 0
        self.start_time = start_time
        self._interval = transmission_time(packet_size, rate_bps)
        self._stopped = False
        tele = sim.telemetry
        if tele is not None and tele.enabled:
            tele.metrics.add_collector(self._collect_metrics)
        self._pending = sim.schedule_at(start_time, self._send_next)

    def _collect_metrics(self, registry) -> None:
        labels = {"flow_id": self.flow_id, "transport": "udp"}
        registry.counter("udp_packets_sent", **labels).set(self.packets_sent)
        registry.counter("udp_bytes_sent", **labels).set(self.bytes_sent)
        registry.gauge("udp_rate_bps", **labels).set(self.rate_bps)

    def stop(self) -> None:
        self._stopped = True

    # -- fluid fast-path hooks (driven by repro.sim.fluid) ---------------------

    def is_active(self, now: float) -> bool:
        """True when the sender would emit a packet at ``now`` (started,
        not stopped, bytes budget not exhausted)."""
        if self._stopped or now < self.start_time:
            return False
        if self.stop_time is not None and now >= self.stop_time:
            return False
        if self.total_bytes is not None and self.bytes_sent >= self.total_bytes:
            return False
        return True

    def fluid_pause(self):
        """Cancel the pending send event so the fluid engine can account
        for this sender analytically. Returns the cancelled send's
        scheduled time (or ``None``), so an engagement that closes no
        epochs can restore the exact per-packet cadence."""
        if self._pending is not None:
            next_send = self._pending.time
            self._pending.cancel()
            self._pending = None
            return next_send
        return None

    def fluid_emit(self, nbytes: int, npackets: int) -> None:
        """Book ``npackets`` whole packets emitted during a fluid epoch."""
        self.bytes_sent += nbytes
        self.packets_sent += npackets

    def fluid_resume(self, next_time: float) -> None:
        """Re-arm the per-packet send loop at ``next_time``."""
        self._pending = self.sim.schedule_at(next_time, self._send_next)

    def _send_next(self) -> None:
        now = self.sim.now
        self._pending = None
        if self._stopped:
            return
        if self.stop_time is not None and now >= self.stop_time:
            return
        if self.total_bytes is not None and self.bytes_sent >= self.total_bytes:
            return
        packet = make_udp(self.host.name, self.dst, self.flow_id, self.packet_size)
        packet.aq_ingress_id = self.aq_ingress_id
        packet.aq_egress_id = self.aq_egress_id
        packet.sent_time = now
        self.host.send(packet)
        self.bytes_sent += self.packet_size
        self.packets_sent += 1
        self._pending = self.sim.schedule(self._interval, self._send_next)


class UdpSink:
    """Counts delivered UDP bytes; the receiving endpoint of a UDP flow."""

    def __init__(
        self,
        host: Host,
        flow_id: int,
        on_deliver: Optional[Callable[[int, float], None]] = None,
    ) -> None:
        self.flow_id = flow_id
        self.delivered_bytes = 0
        self.delivered_packets = 0
        self.on_deliver = on_deliver
        host.register_flow(flow_id, self)

    def on_packet(self, packet: Packet, now: float) -> None:
        self.delivered_bytes += packet.size
        self.delivered_packets += 1
        if self.on_deliver is not None:
            self.on_deliver(packet.size, now)


class UdpFlow:
    """Sender + sink pair; mirrors :class:`~repro.transport.tcp.TcpConnection`."""

    def __init__(
        self,
        network,
        src: str,
        dst: str,
        rate_bps: float,
        packet_size: int = MTU_BYTES,
        start_time: float = 0.0,
        stop_time: Optional[float] = None,
        total_bytes: Optional[int] = None,
        flow_id: Optional[int] = None,
        aq_ingress_id: int = 0,
        aq_egress_id: int = 0,
        on_deliver: Optional[Callable[[int, float], None]] = None,
    ) -> None:
        self.flow_id = network.allocate_flow_id() if flow_id is None else flow_id
        self.sink = UdpSink(network.hosts[dst], self.flow_id, on_deliver=on_deliver)
        self.sender = UdpSender(
            network.sim,
            network.hosts[src],
            dst,
            self.flow_id,
            rate_bps,
            packet_size=packet_size,
            start_time=start_time,
            stop_time=stop_time,
            total_bytes=total_bytes,
            aq_ingress_id=aq_ingress_id,
            aq_egress_id=aq_egress_id,
        )
